"""Parallel sweep executor: fan cases out across worker processes.

The figure functions in :mod:`repro.experiments.figures` call
:func:`repro.experiments.runner.run_case` serially — correct, but a full
report is dozens of independent (scene, policy, VTQ) cases and the
simulator is CPU-bound pure Python, so a sweep leaves every core but one
idle.  This module adds the missing layer:

* :class:`CaseSpec` names one case; :func:`cases_for_figure` enumerates
  the cases each paper figure will request (a mirror of the figure
  loops — an out-of-date entry degrades to a serial computation, never a
  wrong result).
* :func:`run_cases` executes a case list across worker processes
  (``REPRO_JOBS`` workers, default ``os.cpu_count()``), returning results
  in input order.  Workers run :func:`run_case_quarantined`, so a failing
  case becomes a recorded :class:`CaseFailure` in the parent; a crashed
  worker process is likewise converted instead of aborting the sweep.
  Parallel sweeps run on the supervised pool
  (:class:`repro.resilience.SupervisedPool`): per-worker heartbeats
  attribute crashes and hangs to the exact case that caused them, the
  pool rebuilds itself, and a case that destroys
  ``REPRO_MAX_CASE_CRASHES`` workers is poisoned (quarantined with a
  typed reason) instead of retried forever.  ``REPRO_SUPERVISED=0``
  falls back to the legacy ``ProcessPoolExecutor`` path.
* Sweeps with a disk cache checkpoint their progress in a crash-safe
  journal (:class:`repro.resilience.SweepJournal`): a sweep killed
  mid-flight resumes from the last completed case — including
  quarantined failures — instead of re-enumerating.
  ``REPRO_SWEEP_JOURNAL=0`` disables journalling.
* :func:`warm_cases` is the integration point the CLI uses: fan the
  figure's cases out so every worker writes the shared disk cache, then
  let the unchanged figure code replay them as cache hits.  The per-case
  ``flock`` claim in the runner guarantees two workers never simulate the
  same key twice.

Each worker process keeps its own LRU scene/BVH cache (the module-level
cache in :mod:`repro.experiments.runner` is per process), so scenes are
built at most once per worker.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import VTQConfig
from repro.experiments.runner import (
    CaseFailure,
    ExperimentContext,
    record_failure,
    run_case_quarantined,
)
from repro.obs import diff_snapshots, registry as obs_registry

logger = logging.getLogger("repro.experiments.parallel")


@dataclass(frozen=True)
class CaseSpec:
    """One (scene, policy, VTQ overrides, GPU overrides) case of a sweep."""

    scene: str
    policy: str
    vtq: Optional[VTQConfig] = None
    # Name-sorted ((field, value), ...) GPUConfig deltas for this point —
    # the hashable form of run_case's gpu_overrides (see
    # repro.memtrace.safety.normalize_overrides).  Replay-safe deltas let
    # the runner serve the point from a recorded memory trace.
    gpu_overrides: Optional[Tuple[Tuple[str, object], ...]] = None

    def label(self) -> str:
        suffix = "" if self.vtq is None else "+vtqcfg"
        if self.gpu_overrides:
            suffix += "+" + ",".join(
                f"{name}={value}" for name, value in self.gpu_overrides
            )
        return f"{self.scene}/{self.policy}{suffix}"


def gpu_sweep_cases(
    scene: str, policy: str, param: str, values: Sequence,
    vtq: Optional[VTQConfig] = None,
) -> List[CaseSpec]:
    """One :class:`CaseSpec` per value of a single-axis GPU sweep."""
    return [
        CaseSpec(scene, policy, vtq, gpu_overrides=((param, value),))
        for value in values
    ]


def jobs_from_env() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else ``os.cpu_count()``.

    ``REPRO_JOBS=0`` is the explicit "serial, no pool" mode: every case
    runs in the calling process and no ``ProcessPoolExecutor`` is ever
    created.  Negative values are a configuration error and raise
    ``ValueError`` (rather than whatever the pool would do with them);
    non-integer garbage falls back to the CPU count with a warning.
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            logger.warning("ignoring non-integer REPRO_JOBS=%r", raw)
            return os.cpu_count() or 1
        if value < 0:
            raise ValueError(
                f"REPRO_JOBS must be >= 0 (0 = serial, no pool), got {value}"
            )
        return value
    return os.cpu_count() or 1


def _worker(spec: CaseSpec, context: ExperimentContext):
    """Pool entry point: run one case quarantined, in a worker process."""
    return run_case_quarantined(
        spec.scene, spec.policy, context, vtq=spec.vtq,
        gpu_overrides=spec.gpu_overrides,
    )


# Public alias: the serving layer (repro.service.scheduler) dispatches
# jobs onto the same pool entry point the sweep executor uses.
case_worker = _worker


def case_worker_obs(spec: CaseSpec, context: ExperimentContext):
    """Pool entry point that also ships the case's metrics delta home.

    Worker processes accumulate metrics in their own process-local
    registry, invisible to the parent.  This wrapper snapshots the
    registry around the case and returns ``((metrics, failure), delta)``
    so the caller can :meth:`~repro.obs.MetricsRegistry.merge_snapshot`
    the delta — per-case wall time, cache events and bridged ``SimStats``
    counters all survive the process boundary.
    """
    reg = obs_registry()
    before = reg.snapshot()
    result = _worker(spec, context)
    return result, diff_snapshots(before, reg.snapshot())


def _busy_seconds(delta: Dict) -> float:
    """Worker busy time recorded in a metrics delta (case wall seconds)."""
    family = delta.get("repro_case_seconds")
    if not family:
        return 0.0
    return sum(sample["sum"] for sample in family.get("samples", {}).values())


def _observe_sweep(mode: str, elapsed: float, utilization: Optional[float]) -> None:
    reg = obs_registry()
    reg.histogram(
        "repro_sweep_seconds",
        "Wall time of one run_cases sweep",
        ("mode",),
    ).labels(mode=mode).observe(elapsed)
    if utilization is not None:
        reg.gauge(
            "repro_sweep_worker_utilization",
            "Worker busy-seconds / (elapsed * workers) of the last parallel sweep",
        ).labels().set(utilization)


def _count_case(status: str) -> None:
    obs_registry().counter(
        "repro_sweep_cases_total",
        "Sweep cases by outcome",
        ("status",),
    ).labels(status=status).inc()


def _supervised_enabled() -> bool:
    """Supervised pool is the default; ``REPRO_SUPERVISED=0`` opts out."""
    return os.environ.get("REPRO_SUPERVISED", "1") != "0"


def _resume_from_journal(
    journal, keys, cases, results, record_failures
) -> List[int]:
    """Fill ``results`` from journaled progress; returns pending indices."""
    from repro.resilience import deserialize_failure

    progress = journal.load() if journal is not None else {}
    pending: List[int] = []
    for index, spec in enumerate(cases):
        entry = progress.get(keys[index]) if keys else None
        if entry is None:
            pending.append(index)
            continue
        metrics, failure_data = entry
        failure = deserialize_failure(failure_data) if failure_data else None
        if failure is not None and record_failures:
            record_failure(failure)
        _count_case("resumed")
        results[index] = (metrics, failure)
        logger.info("resumed %s from sweep journal", spec.label())
    return pending


def run_cases(
    cases: Sequence[CaseSpec],
    context: ExperimentContext,
    jobs: Optional[int] = None,
    record_failures: bool = True,
    journal="auto",
) -> List[Tuple[Optional[Dict], Optional[CaseFailure]]]:
    """Run every case, fanning out across processes; results in input order.

    Each result is the ``(metrics, failure)`` pair of
    :func:`run_case_quarantined`.  Failures (including a worker process
    dying outright) are recorded in the parent via
    :func:`record_failure` unless ``record_failures`` is False (cache
    warming passes False so the figure replay records them once, in
    figure order).

    Progress checkpoints into a :class:`repro.resilience.SweepJournal`
    (``journal="auto"``; pass ``None`` to disable, or a journal instance
    to share one): a sweep killed mid-flight resumes completed cases —
    successes *and* quarantined failures — from the journal instead of
    re-resolving them.  A completed sweep deletes its journal.
    """
    from repro.resilience import SweepJournal, serialize_failure

    cases = list(cases)
    if not cases:
        return []
    if jobs is None:
        jobs = jobs_from_env()
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = serial, no pool), got {jobs}")
    if journal == "auto":
        journal = SweepJournal.for_cases(cases, context)
    keys: Optional[List[str]] = None
    if journal is not None:
        from repro.experiments.runner import case_key_for

        keys = [
            case_key_for(
                spec.scene, spec.policy, context, spec.vtq, spec.gpu_overrides
            )
            for spec in cases
        ]

    results: List[Optional[Tuple[Optional[Dict], Optional[CaseFailure]]]]
    results = [None] * len(cases)
    pending = _resume_from_journal(journal, keys, cases, results, record_failures)

    def checkpoint(index: int, metrics, failure) -> None:
        if journal is not None:
            journal.record(
                keys[index], metrics,
                serialize_failure(failure) if failure is not None else None,
            )

    try:
        if pending:
            # jobs == 0 is the explicit serial mode; jobs == 1 degenerates
            # to it too (a one-worker pool would only add overhead).
            workers = min(jobs, len(pending))
            if workers <= 1:
                _run_serial(
                    cases, pending, context, results, record_failures, checkpoint
                )
            elif _supervised_enabled():
                _run_supervised(
                    cases, pending, context, results, record_failures,
                    checkpoint, workers,
                )
            else:
                _run_executor(
                    cases, pending, context, results, record_failures,
                    checkpoint, workers,
                )
        if journal is not None:
            journal.complete()
    finally:
        if journal is not None:
            journal.close()
    return results  # type: ignore[return-value]


def _run_serial(
    cases, pending, context, results, record_failures, checkpoint
) -> None:
    start = time.perf_counter()
    for index in pending:
        spec = cases[index]
        try:
            metrics, failure = run_case_quarantined(
                spec.scene, spec.policy, context, vtq=spec.vtq,
                gpu_overrides=spec.gpu_overrides,
            )
        except Exception as exc:  # non-ReproError: mirror the pool path
            metrics = None
            failure = CaseFailure(
                scene=spec.scene,
                policy=spec.policy,
                error_type=type(exc).__name__,
                message=str(exc),
            )
            if record_failures:
                record_failure(failure)
        else:
            if failure is not None and not record_failures:
                # run_case_quarantined already recorded it; undo to
                # honor the caller (warming must not double-report).
                _unrecord(failure)
        _count_case("ok" if failure is None else "quarantined")
        results[index] = (metrics, failure)
        checkpoint(index, metrics, failure)
    _observe_sweep("serial", time.perf_counter() - start, None)


def _run_supervised(
    cases, pending, context, results, record_failures, checkpoint, workers
) -> None:
    """Parallel path on the supervised pool (crash/hang attribution)."""
    from repro.resilience import SupervisedPool

    start = time.perf_counter()
    pool = SupervisedPool(workers, context)
    done = 0

    def on_result(sub_index: int, outcome) -> None:
        nonlocal done
        index = pending[sub_index]
        metrics, failure = outcome
        _count_case("ok" if failure is None else "quarantined")
        results[index] = outcome
        checkpoint(index, metrics, failure)
        done += 1
        logger.info(
            "parallel sweep %d/%d %s%s",
            done, len(pending), cases[index].label(),
            "" if failure is None else f" [quarantined: {failure.error_type}]",
        )

    pool.run(
        [cases[index] for index in pending],
        on_result=on_result,
        record_failures=record_failures,
    )
    elapsed = time.perf_counter() - start
    _observe_sweep(
        "parallel", elapsed,
        pool.busy_seconds / (elapsed * workers) if elapsed > 0 else 0.0,
    )


def _run_executor(
    cases, pending, context, results, record_failures, checkpoint, workers
) -> None:
    """Legacy parallel path (``REPRO_SUPERVISED=0``): plain executor."""
    done = 0
    busy = 0.0
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(case_worker_obs, cases[index], context): index
            for index in pending
        }
        for future in as_completed(futures):
            index = futures[future]
            spec = cases[index]
            try:
                (metrics, failure), obs_delta = future.result()
            except Exception as exc:  # worker process died (or pool broke)
                metrics = None
                failure = CaseFailure(
                    scene=spec.scene,
                    policy=spec.policy,
                    error_type=type(exc).__name__,
                    message=f"worker crashed: {exc}",
                )
            else:
                # Metrics recorded inside the worker process (case wall
                # time, cache events, bridged SimStats) merge into the
                # parent's registry here.
                obs_registry().merge_snapshot(obs_delta)
                busy += _busy_seconds(obs_delta)
            # Quarantine records live in the worker's memory; re-record in
            # the parent so `failures()` reflects the whole sweep.
            if failure is not None and record_failures:
                record_failure(failure)
            _count_case("ok" if failure is None else "quarantined")
            results[index] = (metrics, failure)
            checkpoint(index, metrics, failure)
            done += 1
            logger.info(
                "parallel sweep %d/%d %s%s",
                done, len(pending), spec.label(),
                "" if failure is None else f" [quarantined: {failure.error_type}]",
            )
    elapsed = time.perf_counter() - start
    _observe_sweep(
        "parallel", elapsed, busy / (elapsed * workers) if elapsed > 0 else 0.0
    )


def _unrecord(failure: CaseFailure) -> None:
    from repro.experiments import runner

    try:
        runner._FAILURES.remove(failure)
    except ValueError:  # pragma: no cover - already cleared elsewhere
        pass


def warm_cases(
    cases: Sequence[CaseSpec],
    context: ExperimentContext,
    jobs: Optional[int] = None,
) -> int:
    """Precompute cases into the shared disk cache; returns cases warmed.

    A no-op (returning 0) when the context bypasses the disk cache —
    workers could compute, but the parent could never read the results
    back, so serial execution is the honest choice there.  Failures are
    not recorded here: the figure replay encounters and records them in
    its own deterministic order.
    """
    cases = list(dict.fromkeys(cases))
    if not cases or not context.use_disk_cache:
        return 0
    results = run_cases(cases, context, jobs=jobs, record_failures=False)
    warmed = sum(1 for metrics, _failure in results if metrics is not None)
    logger.info("warmed %d/%d cases into the disk cache", warmed, len(cases))
    return warmed


# ---------------------------------------------------------------------------
# figure case enumeration (mirrors the loops in repro.experiments.figures)
# ---------------------------------------------------------------------------


def cases_for_figure(name: str, context: ExperimentContext) -> List[CaseSpec]:
    """The cases figure ``name`` will request, in a deterministic order.

    Mirrors the per-figure loops.  The contract is safe-by-construction:
    enumerating too few (or stale) cases only means the figure computes
    the difference serially on replay; results are identical either way.
    """
    from repro.experiments.figures import vtq_default

    scenes = context.scenes()
    vtq = vtq_default(context)
    specs: List[CaseSpec] = []

    def base(scene):
        specs.append(CaseSpec(scene, "baseline"))

    if name == "fig1":
        for scene in scenes:
            base(scene)
    elif name == "fig10":
        for scene in scenes:
            base(scene)
            specs.append(CaseSpec(scene, "prefetch"))
            specs.append(CaseSpec(scene, "vtq", vtq))
    elif name == "gaussian":
        from repro.scenes.gaussians import gaussian_scene_names, is_gaussian_scene

        gscenes = [s for s in scenes if is_gaussian_scene(s)]
        if not gscenes:
            gscenes = gaussian_scene_names()
        for scene in gscenes:
            base(scene)
            specs.append(CaseSpec(scene, "prefetch"))
            specs.append(CaseSpec(scene, "vtq", vtq))
    elif name == "fig11":
        scene = "LANDS" if "LANDS" in scenes else scenes[-1]
        base(scene)
        specs.append(CaseSpec(scene, "vtq", vtq.naive()))
    elif name == "fig12":
        for scene in scenes:
            base(scene)
            specs.append(CaseSpec(scene, "vtq", vtq.naive()))
            for t in (32, 64, 128):
                cfg = replace(vtq, queue_threshold=t, repack_enabled=False)
                specs.append(CaseSpec(scene, "vtq", cfg))
    elif name == "fig13":
        for scene in scenes:
            base(scene)
            specs.append(CaseSpec(scene, "vtq", replace(vtq, repack_enabled=False)))
            for t in (8, 16, 22):
                specs.append(CaseSpec(scene, "vtq", replace(vtq, repack_threshold=t)))
    elif name in ("fig14", "fig15", "sec65"):
        for scene in scenes:
            specs.append(CaseSpec(scene, "vtq", vtq))
    elif name == "fig16":
        ideal = replace(vtq, virtualization_overheads=False)
        for scene in scenes:
            specs.append(CaseSpec(scene, "vtq", vtq))
            specs.append(CaseSpec(scene, "vtq", ideal))
    elif name == "fig17":
        for scene in scenes:
            base(scene)
            specs.append(CaseSpec(scene, "vtq", vtq))
    # table1/table2/fig5 run no simulator cases.
    return specs


def cases_for_figures(
    names: Sequence[str], context: ExperimentContext
) -> List[CaseSpec]:
    """Deduplicated union of :func:`cases_for_figure` over ``names``."""
    merged: List[CaseSpec] = []
    for name in names:
        merged.extend(cases_for_figure(name, context))
    return list(dict.fromkeys(merged))
