"""Case runner with scene caching and on-disk result caching.

A *case* is (scene, policy, VTQ overrides) under an
:class:`ExperimentContext` (image size, GPU config, scene scale).  Results
are JSON dicts of scalar metrics plus small series, cached under
``.cache/experiments/`` keyed by a hash of everything that affects the
outcome — so re-running a benchmark that shares cases with an earlier one
(the baseline run feeds half the figures) is free.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bvh import build_scene_bvh
from repro.core.config import VTQConfig
from repro.gpusim.config import GPUConfig, ScaledSetup, default_setup
from repro.gpusim.energy import EnergyModel
from repro.gpusim.stats import TraversalMode
from repro.scenes import load_scene, scene_names
from repro.tracing import render_scene

# Bump when simulator semantics change, to invalidate stale cached results.
RESULTS_VERSION = "6"

_CACHE_DIR = Path(__file__).resolve().parents[3] / ".cache" / "experiments"


@dataclass(frozen=True)
class ExperimentContext:
    """Everything shared across the cases of one reproduction run."""

    setup: ScaledSetup
    scene_list: Tuple[str, ...]
    use_disk_cache: bool = True

    def scenes(self) -> List[str]:
        return list(self.scene_list)


def default_context(fast: bool = False) -> ExperimentContext:
    """The context benchmarks run under.

    ``REPRO_SCENES`` (comma-separated names) restricts the scene list;
    ``REPRO_SCALE`` grows the workload (see ``default_setup``).  ``fast``
    is used by unit tests: two scenes at tiny scale.
    """
    setup = default_setup(fast=fast)
    env = os.environ.get("REPRO_SCENES")
    if env:
        names = tuple(n.strip().upper() for n in env.split(",") if n.strip())
    elif fast:
        names = ("BUNNY", "SPNZA")
    else:
        names = tuple(scene_names())
    return ExperimentContext(setup=setup, scene_list=names)


# -- scene/BVH construction is cached per process --------------------------------

_scene_cache: Dict[Tuple, Tuple] = {}


def scene_and_bvh(name: str, setup: ScaledSetup):
    """The (Scene, SceneBVH) pair for a case, built once per process."""
    key = (name, setup.scene_scale, setup.gpu.treelet_bytes, setup.gpu.line_bytes)
    if key not in _scene_cache:
        scene = load_scene(name, scale=setup.scene_scale)
        bvh = build_scene_bvh(
            scene.mesh,
            treelet_budget_bytes=setup.gpu.treelet_bytes,
        )
        _scene_cache[key] = (scene, bvh)
    return _scene_cache[key]


# -- result cache ------------------------------------------------------------------


def _case_key(scene: str, policy: str, setup: ScaledSetup, vtq: Optional[VTQConfig]) -> str:
    payload = {
        "v": RESULTS_VERSION,
        "scene": scene,
        "policy": policy,
        "setup": {
            "gpu": asdict(setup.gpu),
            "w": setup.image_width,
            "h": setup.image_height,
            "scale": setup.scene_scale,
            "bounces": setup.max_bounces,
        },
        "vtq": asdict(vtq) if vtq is not None else None,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


def clear_cache() -> None:
    """Delete all cached experiment results."""
    if _CACHE_DIR.exists():
        shutil.rmtree(_CACHE_DIR)


def run_case(
    scene_name: str,
    policy: str,
    context: ExperimentContext,
    vtq: Optional[VTQConfig] = None,
) -> Dict:
    """Run one case (or fetch it from cache) and return its metric dict."""
    setup = context.setup
    key = _case_key(scene_name, policy, setup, vtq)
    cache_path = _CACHE_DIR / f"{key}.json"
    if context.use_disk_cache and cache_path.exists():
        with open(cache_path) as f:
            return json.load(f)

    scene, bvh = scene_and_bvh(scene_name, setup)
    result = render_scene(scene, bvh, setup, policy=policy, vtq_config=vtq)
    metrics = extract_metrics(result, setup)
    metrics["scene"] = scene_name
    metrics["policy"] = policy

    if context.use_disk_cache:
        _CACHE_DIR.mkdir(parents=True, exist_ok=True)
        tmp = cache_path.with_suffix(".tmp")
        with open(tmp, "w") as f:
            json.dump(metrics, f)
        tmp.replace(cache_path)
    return metrics


def extract_metrics(result, setup: ScaledSetup) -> Dict:
    """Flatten a RenderResult into the JSON-serializable metric dict."""
    stats = result.stats
    energy = EnergyModel().compute(
        stats, setup.gpu.line_bytes, sm_cycles=sum(result.per_sm_cycles)
    )
    return {
        "cycles": result.cycles,
        "per_sm_cycles": result.per_sm_cycles,
        "rays_traced": stats.rays_traced,
        "warps": stats.warps_processed,
        "simt_efficiency": stats.simt_efficiency(),
        "l1_bvh_miss_rate": stats.miss_rate("l1", "bvh"),
        "l2_bvh_miss_rate": stats.miss_rate("l2", "bvh"),
        "node_visits": stats.node_visits,
        "leaf_visits": stats.leaf_visits,
        "triangle_tests": stats.triangle_tests,
        "mode_cycles": {m.value: stats.mode_cycles[m] for m in TraversalMode},
        "mode_tests": {m.value: stats.mode_tests[m] for m in TraversalMode},
        "mode_cycle_fractions": {
            m.value: f for m, f in stats.mode_cycle_fractions().items()
        },
        "mode_test_fractions": {
            m.value: f for m, f in stats.mode_test_fractions().items()
        },
        # Lists (not tuples) so the dict round-trips through JSON unchanged.
        "l1_timeline": [list(point) for point in stats.l1_bvh_timeline.series()],
        "energy": energy.as_dict(),
        "warp_repacks": stats.warp_repacks,
        "prefetch_lines": stats.prefetch_lines,
        "prefetch_unused_fraction": stats.prefetch_unused_fraction(),
        "cta_saves": stats.cta_saves,
        "cta_restores": stats.cta_restores,
        "queue_table_overflows": stats.queue_table_overflows,
        "count_table_evictions": stats.count_table_evictions,
        "queue_table_peak_entries": stats.queue_table_peak_entries,
        "count_table_peak_entries": stats.count_table_peak_entries,
        "traffic_bytes": dict(stats.traffic_bytes),
        "mean_radiance": result.mean_radiance(),
    }
