"""Case runner with scene caching and hardened on-disk result caching.

A *case* is (scene, policy, VTQ overrides) under an
:class:`ExperimentContext` (image size, GPU config, scene scale).  Results
are JSON dicts of scalar metrics plus small series, cached under
``.cache/experiments/`` keyed by a hash of everything that affects the
outcome — so re-running a benchmark that shares cases with an earlier one
(the baseline run feeds half the figures) is free.

Robustness:

* Cache entries are versioned, keyed and checksummed
  (``{"version", "key", "checksum", "metrics"}``); a truncated,
  corrupted, stale or mismatched entry is logged, deleted and recomputed
  — never trusted, never fatal.
* Each case runs under an optional :class:`CaseBudget` (wall-clock +
  simulated-cycle watchdogs, see :mod:`repro.gpusim.budget`).
* :func:`run_case_quarantined` converts a failing case into a recorded
  :class:`CaseFailure` so a multi-case sweep completes with the failure
  marked instead of aborting; :func:`failures` lists what went wrong.
* The per-process scene/BVH cache is LRU-bounded
  (``REPRO_SCENE_CACHE_ENTRIES``, default 8) so long sweeps over many
  scene/scale combinations don't grow memory without limit.
* The disk cache is safe under concurrent sweep workers: a per-case
  ``flock`` claim file serializes compute-and-write per key, so two
  processes racing on the same case produce one simulation and one valid
  entry (the loser reads the winner's result).  ``REPRO_CACHE_DIR``
  overrides the cache location; ``REPRO_CACHE_TRACE`` appends
  ``HIT <key>`` / ``COMPUTE <key>`` lines to a log for auditing.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import time

from repro import faults
from repro.bvh import build_scene_bvh
from repro.core.config import VTQConfig
from repro.errors import BudgetExceeded, CacheError, ReproError, SimulationError, TraceError
from repro.gpusim.budget import CaseBudget, budget_from_env, wall_clock_watchdog
from repro.gpusim.config import GPUConfig, ScaledSetup, default_setup
from repro.gpusim.energy import EnergyModel
from repro.gpusim.stats import TraversalMode
from repro.obs import registry as obs_registry
from repro.scenes import load_scene, scene_names
from repro.tracing import render_scene

logger = logging.getLogger("repro.experiments")

# Bump when simulator semantics change, to invalidate stale cached results.
RESULTS_VERSION = "7"

_CACHE_DIR = Path(__file__).resolve().parents[3] / ".cache" / "experiments"


def cache_dir() -> Path:
    """The experiment result cache directory.

    ``REPRO_CACHE_DIR`` overrides the repo-relative default — parallel
    sweep workers and CI jobs point it at scratch space.  Read on every
    call so tests and workers can retarget it at runtime.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return _CACHE_DIR


@dataclass(frozen=True)
class ExperimentContext:
    """Everything shared across the cases of one reproduction run."""

    setup: ScaledSetup
    scene_list: Tuple[str, ...]
    use_disk_cache: bool = True
    budget: Optional[CaseBudget] = None
    sanitize: Optional[bool] = None

    def scenes(self) -> List[str]:
        return list(self.scene_list)

    def case_budget(self) -> Optional[CaseBudget]:
        """The context's budget, falling back to the environment's."""
        return self.budget if self.budget is not None else budget_from_env()


def default_context(fast: bool = False) -> ExperimentContext:
    """The context benchmarks run under.

    ``REPRO_SCENES`` (comma-separated names) restricts the scene list;
    ``REPRO_SCALE`` grows the workload (see ``default_setup``).  ``fast``
    is used by unit tests: two scenes at tiny scale.
    """
    setup = default_setup(fast=fast)
    env = os.environ.get("REPRO_SCENES")
    if env:
        names = tuple(n.strip().upper() for n in env.split(",") if n.strip())
    elif fast:
        names = ("BUNNY", "SPNZA")
    else:
        names = tuple(scene_names())
    return ExperimentContext(setup=setup, scene_list=names)


# -- scene/BVH construction is cached per process (LRU-bounded) --------------------

_scene_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()


def _scene_cache_limit() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_SCENE_CACHE_ENTRIES", "8")))
    except ValueError:
        return 8


def scene_and_bvh(name: str, setup: ScaledSetup):
    """The (Scene, SceneBVH) pair for a case, built once per process.

    The cache holds at most ``REPRO_SCENE_CACHE_ENTRIES`` (default 8)
    pairs, evicting least-recently-used, so sweeps over many scene/scale
    combinations stay memory-bounded.
    """
    key = (name, setup.scene_scale, setup.gpu.treelet_bytes, setup.gpu.line_bytes)
    if key in _scene_cache:
        _scene_cache.move_to_end(key)
        return _scene_cache[key]
    scene = load_scene(name, scale=setup.scene_scale)
    bvh = build_scene_bvh(
        scene.mesh,
        treelet_budget_bytes=setup.gpu.treelet_bytes,
    )
    _scene_cache[key] = (scene, bvh)
    limit = _scene_cache_limit()
    while len(_scene_cache) > limit:
        _scene_cache.popitem(last=False)
    return _scene_cache[key]


# -- result cache ------------------------------------------------------------------


def _case_key(scene: str, policy: str, setup: ScaledSetup, vtq: Optional[VTQConfig]) -> str:
    payload = {
        "v": RESULTS_VERSION,
        "scene": scene,
        "policy": policy,
        "setup": {
            "gpu": asdict(setup.gpu),
            "w": setup.image_width,
            "h": setup.image_height,
            "scale": setup.scene_scale,
            "bounces": setup.max_bounces,
        },
        "vtq": asdict(vtq) if vtq is not None else None,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


def case_key_for(
    scene: str,
    policy: str,
    context: ExperimentContext,
    vtq: Optional[VTQConfig] = None,
    gpu_overrides=None,
) -> str:
    """The disk-cache key :func:`run_case` would use for this case.

    Public so the sweep journal (:mod:`repro.resilience.journal`) can
    identify completed cases by exactly the identity the cache uses —
    any input change that would invalidate the cache also invalidates
    the journal entry.
    """
    from repro.memtrace.safety import normalize_overrides

    overrides = dict(normalize_overrides(gpu_overrides))
    point = _point_context(context, overrides)
    return _case_key(scene, policy, point.setup, vtq)


def _metrics_checksum(metrics: Dict) -> str:
    blob = json.dumps(metrics, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _read_cache_entry(cache_path: Path, key: str) -> Dict:
    """Load and verify one cache file; :class:`CacheError` on any defect."""
    try:
        with open(cache_path) as f:
            entry = json.load(f)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CacheError(f"unreadable cache entry {cache_path.name}: {exc}") from exc
    if not isinstance(entry, dict) or "metrics" not in entry:
        raise CacheError(f"cache entry {cache_path.name} has unexpected schema")
    if entry.get("version") != RESULTS_VERSION:
        raise CacheError(
            f"cache entry {cache_path.name} is version {entry.get('version')!r}, "
            f"expected {RESULTS_VERSION!r}"
        )
    if entry.get("key") != key:
        raise CacheError(f"cache entry {cache_path.name} keyed for a different case")
    metrics = entry["metrics"]
    if not isinstance(metrics, dict):
        raise CacheError(f"cache entry {cache_path.name} metrics are not a dict")
    if entry.get("checksum") != _metrics_checksum(metrics):
        raise CacheError(f"cache entry {cache_path.name} failed its checksum")
    return metrics


def _write_cache_entry(cache_path: Path, key: str, metrics: Dict) -> None:
    """Atomically write a versioned, checksummed cache entry."""
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    entry = {
        "version": RESULTS_VERSION,
        "key": key,
        "checksum": _metrics_checksum(metrics),
        "metrics": metrics,
    }
    tmp = cache_path.with_suffix(".tmp")
    with open(tmp, "w") as f:
        json.dump(entry, f)
    tmp.replace(cache_path)


def _observe_case(scene: str, policy: str, source: str, seconds: float) -> None:
    """Record one resolved case in the metrics registry (repro.obs)."""
    reg = obs_registry()
    labels = {"scene": scene, "policy": policy, "source": source}
    reg.counter(
        "repro_case_total",
        "Cases resolved, by how (hit/compute/nocache)",
        ("scene", "policy", "source"),
    ).labels(**labels).inc()
    reg.histogram(
        "repro_case_seconds",
        "Per-case wall time by resolution path",
        ("scene", "policy", "source"),
    ).labels(**labels).observe(seconds)


def _trace_cache(event: str, key: str) -> None:
    """Append one ``EVENT <key>`` line to the ``REPRO_CACHE_TRACE`` log.

    ``O_APPEND`` keeps concurrent writers' lines intact, so the log is a
    faithful record of which process hit and which computed.  The same
    events also feed the ``repro_cache_events_total`` metric, which works
    without any trace log configured.
    """
    obs_registry().counter(
        "repro_cache_events_total",
        "Disk result-cache events (HIT = replayed, COMPUTE = simulated)",
        ("event",),
    ).labels(event=event.lower()).inc()
    path = os.environ.get("REPRO_CACHE_TRACE")
    if not path:
        return
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, f"{event} {key}\n".encode())
    finally:
        os.close(fd)


@contextmanager
def _case_claim(key: str):
    """Cross-process mutex for one cache key.

    An ``flock`` over ``<key>.lock`` in the cache directory, managed by
    the shared retry policy (:func:`repro.resilience.flock_claim`), so
    two sweep workers never simulate the same case concurrently: the
    loser of the race waits, then finds the winner's entry on disk.  On
    platforms without ``fcntl`` the claim degrades to a no-op (the cache
    write is still atomic; at worst a case is computed twice).
    """
    from repro.resilience import flock_claim

    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    with flock_claim(directory / f"{key}.lock", describe=f"case:{key}"):
        yield


def clear_cache() -> None:
    """Delete all cached experiment results."""
    directory = cache_dir()
    if directory.exists():
        shutil.rmtree(directory)


# -- failure quarantine -------------------------------------------------------------


@dataclass
class CaseFailure:
    """One quarantined case: what failed and why."""

    scene: str
    policy: str
    error_type: str
    message: str
    partial: Dict = field(default_factory=dict)

    def label(self) -> str:
        return f"{self.scene}/{self.policy}"


_FAILURES: List[CaseFailure] = []


def record_failure(failure: CaseFailure) -> CaseFailure:
    _FAILURES.append(failure)
    return failure


def failures() -> List[CaseFailure]:
    """Quarantined cases recorded since the last :func:`clear_failures`."""
    return list(_FAILURES)


def clear_failures() -> None:
    _FAILURES.clear()


# -- case execution -----------------------------------------------------------------


def _try_read_cache(cache_path: Path, key: str, case_label: str) -> Optional[Dict]:
    """Read a cache entry if present and valid; drop defective entries."""
    if not cache_path.exists():
        return None
    try:
        metrics = _read_cache_entry(cache_path, key)
    except CacheError as exc:
        logger.warning("recomputing %s: %s", case_label, exc)
        try:
            cache_path.unlink()
        except OSError:  # pragma: no cover - racing unlink is fine
            pass
        return None
    _trace_cache("HIT", key)
    return metrics


def _memtrace_sweeps_enabled() -> bool:
    """Replay substitution for replay-safe sweep points (default on)."""
    return os.environ.get("REPRO_MEMTRACE_SWEEPS", "1") != "0"


def _memtrace_capture_enabled() -> bool:
    """``REPRO_MEMTRACE=1``: record live runs into the trace store."""
    return os.environ.get("REPRO_MEMTRACE", "0") not in ("", "0")


def _point_context(
    context: ExperimentContext, overrides: Dict
) -> ExperimentContext:
    """The context with GPU overrides folded into its setup."""
    if not overrides:
        return context
    setup = context.setup
    return replace(
        context, setup=replace(setup, gpu=replace(setup.gpu, **overrides))
    )


def run_case(
    scene_name: str,
    policy: str,
    context: ExperimentContext,
    vtq: Optional[VTQConfig] = None,
    gpu_overrides=None,
) -> Dict:
    """Run one case (or fetch it from cache) and return its metric dict.

    A corrupt, truncated or stale cache entry is logged, deleted and
    recomputed.  When the context carries a :class:`CaseBudget` the case
    runs under wall-clock and simulated-cycle watchdogs and raises
    :class:`BudgetExceeded` past either.  Concurrent callers (parallel
    sweep workers) computing the same key serialize on a per-case
    ``flock`` claim: exactly one simulates, the rest read its entry.

    ``gpu_overrides`` (a mapping or ``(field, value)`` pairs) applies
    :class:`~repro.gpusim.config.GPUConfig` deltas on top of the context
    for this point.  The cache key is computed from the *overridden*
    setup, so the result is interchangeable with a run whose context
    carried those values directly.  When every override is replay-safe
    (see :mod:`repro.memtrace.safety`) and ``REPRO_MEMTRACE_SWEEPS`` is
    not ``0``, the point is served by replaying the group's recorded
    memory trace instead of a fresh live simulation — same metric dict,
    a fraction of the wall time.
    """
    from repro.memtrace.safety import normalize_overrides

    overrides = dict(normalize_overrides(gpu_overrides))
    point = _point_context(context, overrides)
    key = _case_key(scene_name, policy, point.setup, vtq)
    case_label = f"{scene_name}:{policy}"
    start = time.perf_counter()
    if not point.use_disk_cache:
        metrics = _compute_case(
            scene_name, policy, point, vtq, case_label,
            base_context=context, overrides=overrides,
        )
        _observe_case(scene_name, policy, "nocache", time.perf_counter() - start)
        return metrics
    cache_path = cache_dir() / f"{key}.json"
    metrics = _try_read_cache(cache_path, key, case_label)
    if metrics is not None:
        _observe_case(scene_name, policy, "hit", time.perf_counter() - start)
        return metrics
    with _case_claim(key):
        # Another worker may have written the entry while we waited.
        metrics = _try_read_cache(cache_path, key, case_label)
        if metrics is not None:
            _observe_case(scene_name, policy, "hit", time.perf_counter() - start)
            return metrics
        metrics = _compute_case(
            scene_name, policy, point, vtq, case_label,
            base_context=context, overrides=overrides,
        )
        _trace_cache("COMPUTE", key)
        _write_cache_entry(cache_path, key, metrics)
        spec = faults.should_fire(faults.CACHE_CORRUPT, case_label)
        if spec is not None:
            faults.corrupt_file(
                cache_path,
                faults.rng(spec, case_label),
                mode=spec.payload.get("mode", "truncate"),
            )
    _observe_case(scene_name, policy, "compute", time.perf_counter() - start)
    return metrics


def _compute_case(
    scene_name: str,
    policy: str,
    context: ExperimentContext,
    vtq: Optional[VTQConfig],
    case_label: str,
    base_context: Optional[ExperimentContext] = None,
    overrides: Optional[Dict] = None,
) -> Dict:
    """Simulate (or replay) one case under its budget; returns metrics.

    ``context`` already carries any GPU overrides.  ``base_context`` is
    the pre-override context; together with ``overrides`` it lets a
    replay-safe point be served from the group's recorded trace.
    """
    setup = context.setup
    overrides = overrides or {}
    try:
        spec = faults.should_fire(faults.CASE_FAIL, case_label)
        if spec is not None:
            raise SimulationError(
                spec.payload.get("message", f"injected failure for case {case_label}")
            )

        if overrides and base_context is not None and _memtrace_sweeps_enabled():
            metrics = _try_replay_case(
                scene_name, policy, setup, vtq, base_context, overrides, case_label
            )
            if metrics is not None:
                return metrics

        budget = context.case_budget()
        wall = budget.wall_seconds if budget else None
        cycles = budget.max_cycles if budget else None
        with wall_clock_watchdog(wall, describe=case_label):
            scene, bvh = scene_and_bvh(scene_name, setup)
            recorder = _maybe_recorder(policy)
            render_start = time.perf_counter()
            result = render_scene(
                scene, bvh, setup, policy=policy, vtq_config=vtq,
                cycle_budget=cycles, sanitize=context.sanitize,
                trace_recorder=recorder,
            )
            if recorder is not None:
                _store_recording(
                    recorder, scene_name, setup, vtq, bvh, result,
                    time.perf_counter() - render_start, case_label,
                )
    except ReproError as exc:
        # Annotate so quarantining callers know which case blew up.
        exc.scene = scene_name
        exc.policy = policy
        raise
    metrics = extract_metrics(result, setup)
    metrics["scene"] = scene_name
    metrics["policy"] = policy
    return metrics


def _try_replay_case(
    scene_name: str,
    policy: str,
    setup: ScaledSetup,
    vtq: Optional[VTQConfig],
    base_context: ExperimentContext,
    overrides: Dict,
    case_label: str,
) -> Optional[Dict]:
    """Serve a replay-safe sweep point from its group's memory trace.

    Returns ``None`` (caller falls back to a live simulation) when the
    point is not replay-eligible or anything about the trace path fails —
    replay substitution is an accelerator, never a correctness risk.
    """
    from repro.memtrace import ensure_trace, overrides_replay_safe, replay_trace

    if not overrides_replay_safe(policy, overrides):
        return None
    try:
        trace = ensure_trace(scene_name, policy, base_context, vtq)
        result = replay_trace(trace, overrides)
    except TraceError as exc:
        logger.warning("replay substitution failed for %s: %s", case_label, exc)
        return None
    metrics = extract_metrics(result, setup)
    metrics["scene"] = scene_name
    metrics["policy"] = policy
    return metrics


def _maybe_recorder(policy: str):
    """A budgeted TraceRecorder when ``REPRO_MEMTRACE`` capture is on."""
    if not _memtrace_capture_enabled():
        return None
    from repro.memtrace import RECORDABLE_POLICIES, TraceRecorder, trace_budget_bytes

    if policy not in RECORDABLE_POLICIES:
        return None
    return TraceRecorder(policy, budget_bytes=trace_budget_bytes())


def _store_recording(
    recorder, scene_name, setup, vtq, bvh, result, wall_s, case_label
) -> None:
    """Finish and store a live capture; failures log, never break the case."""
    from repro.memtrace import store_trace, trace_key

    try:
        trace = recorder.finish(
            scene_name=scene_name, setup=setup, vtq=vtq, bvh=bvh,
            result=result, record_wall_s=wall_s,
        )
        store_trace(trace, trace_key(scene_name, policy=trace.policy, setup=setup, vtq=vtq))
    except TraceError as exc:
        logger.warning("memory-trace capture of %s not kept: %s", case_label, exc)


def run_case_quarantined(
    scene_name: str,
    policy: str,
    context: ExperimentContext,
    vtq: Optional[VTQConfig] = None,
    gpu_overrides=None,
) -> Tuple[Optional[Dict], Optional[CaseFailure]]:
    """Run a case, converting failures into a recorded :class:`CaseFailure`.

    Returns ``(metrics, None)`` on success, ``(None, failure)`` when the
    case raised — the sweep marks the cell and keeps going.
    """
    try:
        return run_case(scene_name, policy, context, vtq, gpu_overrides), None
    except ReproError as exc:
        partial = exc.partial if isinstance(exc, BudgetExceeded) else {}
        failure = record_failure(
            CaseFailure(
                scene=scene_name,
                policy=policy,
                error_type=type(exc).__name__,
                message=str(exc),
                partial=dict(partial),
            )
        )
        obs_registry().counter(
            "repro_case_quarantined_total",
            "Cases quarantined instead of completing, by error type",
            ("scene", "policy", "error"),
        ).labels(
            scene=scene_name, policy=policy, error=type(exc).__name__
        ).inc()
        logger.warning("quarantined %s/%s: %s", scene_name, policy, exc)
        return None, failure


def extract_metrics(result, setup: ScaledSetup) -> Dict:
    """Flatten a RenderResult into the JSON-serializable metric dict."""
    stats = result.stats
    energy = EnergyModel().compute(
        stats, setup.gpu.line_bytes, sm_cycles=sum(result.per_sm_cycles)
    )
    return {
        "cycles": result.cycles,
        "per_sm_cycles": result.per_sm_cycles,
        "rays_traced": stats.rays_traced,
        "rays_completed": stats.rays_completed,
        "warps": stats.warps_processed,
        "simt_efficiency": stats.simt_efficiency(),
        "l1_bvh_miss_rate": stats.miss_rate("l1", "bvh"),
        "l2_bvh_miss_rate": stats.miss_rate("l2", "bvh"),
        "node_visits": stats.node_visits,
        "leaf_visits": stats.leaf_visits,
        "triangle_tests": stats.triangle_tests,
        "mode_cycles": {m.value: stats.mode_cycles[m] for m in TraversalMode},
        "mode_tests": {m.value: stats.mode_tests[m] for m in TraversalMode},
        "mode_cycle_fractions": {
            m.value: f for m, f in stats.mode_cycle_fractions().items()
        },
        "mode_test_fractions": {
            m.value: f for m, f in stats.mode_test_fractions().items()
        },
        # Lists (not tuples) so the dict round-trips through JSON unchanged.
        "l1_timeline": [list(point) for point in stats.l1_bvh_timeline.series()],
        "energy": energy.as_dict(),
        "warp_repacks": stats.warp_repacks,
        "prefetch_lines": stats.prefetch_lines,
        "prefetch_unused_fraction": stats.prefetch_unused_fraction(),
        "cta_saves": stats.cta_saves,
        "cta_restores": stats.cta_restores,
        "queue_table_overflows": stats.queue_table_overflows,
        "count_table_evictions": stats.count_table_evictions,
        "queue_table_peak_entries": stats.queue_table_peak_entries,
        "count_table_peak_entries": stats.count_table_peak_entries,
        "traffic_bytes": dict(stats.traffic_bytes),
        "mean_radiance": result.mean_radiance(),
    }
