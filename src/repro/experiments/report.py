"""Rendering and export of experiment results (text, CSV, JSON)."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Callable, Dict, List, Union


def format_table(result: Dict) -> str:
    """Render a figure dict (title/headers/rows) as an aligned text table."""
    headers = [str(h) for h in result["headers"]]
    rows = [[str(c) for c in row] for row in result["rows"]]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: List[str]) -> str:
        return " | ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    lines = [result.get("title", ""), ""]
    lines.append(fmt_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rows)
    if "simt_table" in result:
        lines.append("")
        lines.append(format_table(result["simt_table"]))
    if "notes" in result:
        lines.append("")
        lines.append(result["notes"])
    return "\n".join(lines)


def format_failures(failures: List) -> str:
    """Render a failure summary from :func:`repro.experiments.failures`.

    Returns ``""`` when nothing was quarantined, so callers can append it
    unconditionally.
    """
    if not failures:
        return ""
    lines = [f"QUARANTINED CASES ({len(failures)})", ""]
    for f in failures:
        lines.append(f"  {f.label()}: {f.error_type}: {f.message}")
        if f.partial:
            progress = ", ".join(f"{k}={v}" for k, v in sorted(f.partial.items()))
            lines.append(f"    partial progress: {progress}")
    return "\n".join(lines)


def render_all(context, figures: List[Callable]) -> str:
    """Run and render a list of figure functions into one report string.

    Quarantined cases recorded during the run are summarized at the end.
    """
    from repro.experiments.runner import failures

    sections = []
    for fig in figures:
        sections.append(format_table(fig(context)))
    summary = format_failures(failures())
    if summary:
        sections.append(summary)
    return ("\n\n" + "=" * 72 + "\n\n").join(sections)


def to_csv(result: Dict) -> str:
    """Render a figure dict as CSV text (headers + rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result["headers"])
    writer.writerows(result["rows"])
    return buffer.getvalue()


def to_json(result: Dict) -> str:
    """Render a figure dict as a JSON document."""
    payload = {
        "title": result.get("title", ""),
        "headers": list(result["headers"]),
        "rows": [list(row) for row in result["rows"]],
    }
    if "series" in result:
        payload["series"] = result["series"]
    if "simt_table" in result:
        payload["simt_table"] = {
            "title": result["simt_table"].get("title", ""),
            "headers": list(result["simt_table"]["headers"]),
            "rows": [list(r) for r in result["simt_table"]["rows"]],
        }
    return json.dumps(payload, indent=2)


def export(result: Dict, path: Union[str, Path]) -> None:
    """Write a figure dict to ``path``; the suffix picks the format.

    ``.csv`` and ``.json`` are structured; anything else gets the aligned
    text table.
    """
    path = Path(path)
    if path.suffix == ".csv":
        path.write_text(to_csv(result))
    elif path.suffix == ".json":
        path.write_text(to_json(result))
    else:
        path.write_text(format_table(result) + "\n")
