"""One function per paper table / figure.

Each returns a dict with ``title``, ``headers``, ``rows`` (strings or
numbers) and optionally ``series`` / ``notes``.  The benchmark files under
``benchmarks/`` call these and print them with
:func:`repro.experiments.report.format_table`; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import asdict, replace
from typing import Dict, List, Optional

import numpy as np

from repro.analytic import collect_workload_traces, concurrency_sweep
from repro.core.config import VTQConfig
from repro.core.treelet_queue import area_overheads
from repro.errors import BudgetExceeded, ReproError
from repro.experiments.runner import (
    CaseFailure,
    ExperimentContext,
    record_failure,
    run_case,
    scene_and_bvh,
)
from repro.gpusim.stats import TraversalMode
from repro.scenes import scene_names, scene_spec


def _geomean(values: List[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return float(np.exp(np.mean(np.log(values))))


def _quarantine_row(scene: str, exc: ReproError, width: int) -> List[str]:
    """Record a failed case and return the figure row marking its cell.

    Every figure loops per scene inside ``try/except ReproError``: a
    failing (scene, policy) case becomes one quarantined row while the
    rest of the figure still renders.  Shared aggregate lists are only
    appended after a scene's whole row computed, so mean/geomean rows
    stay consistent.
    """
    failure = record_failure(
        CaseFailure(
            scene=scene,
            policy=getattr(exc, "policy", "?"),
            error_type=type(exc).__name__,
            message=str(exc),
            partial=dict(exc.partial) if isinstance(exc, BudgetExceeded) else {},
        )
    )
    cell = f"QUARANTINED {failure.error_type}: {failure.message}"
    if len(cell) > 72:
        cell = cell[:69] + "..."
    return [scene, cell] + ["-"] * max(0, width - 2)


def vtq_default(context: ExperimentContext) -> VTQConfig:
    """Population-scaled VTQ parameters for this context.

    The paper's 128-ray queue threshold assumes 4096 rays in flight per
    SM.  The effective population here is min(virtual-ray budget, pixels
    assigned to the SM), so the threshold scales with whichever binds —
    otherwise queues can never reach the threshold and the treelet phase
    would be legislated away rather than decided dynamically.
    """
    setup = context.setup
    population = min(
        setup.gpu.max_virtual_rays_per_sm,
        max(1, setup.pixels // setup.gpu.num_sms),
    )
    return VTQConfig().scaled_to(population)


#: Back-compat alias — the sweep surrogate and bench import the public name.
_vtq_default = vtq_default


# ---------------------------------------------------------------------------
# Figure 1: baseline bottlenecks
# ---------------------------------------------------------------------------


def fig01_baseline_bottlenecks(context: ExperimentContext) -> Dict:
    """Fig. 1a/1b: baseline L1 miss rate of BVH accesses and SIMT efficiency.

    Paper: miss rates average 58% (up to 70%), SIMT efficiency is low;
    both sorted by ascending BVH size.
    """
    rows = []
    misses, simts = [], []
    for scene in context.scenes():
        try:
            m = run_case(scene, "baseline", context)
        except ReproError as exc:
            rows.append(_quarantine_row(scene, exc, 3))
            continue
        rows.append([scene, f"{m['l1_bvh_miss_rate']:.3f}", f"{m['simt_efficiency']:.3f}"])
        misses.append(m["l1_bvh_miss_rate"])
        simts.append(m["simt_efficiency"])
    if misses:
        rows.append(["MEAN", f"{np.mean(misses):.3f}", f"{np.mean(simts):.3f}"])
    return {
        "title": "Figure 1: baseline RT-unit bottlenecks (paper: avg 58% L1 miss, low SIMT)",
        "headers": ["scene", "L1 BVH miss rate", "SIMT efficiency"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figure 5: analytical model
# ---------------------------------------------------------------------------


def fig05_analytical_model(
    context: ExperimentContext, levels=(64, 256, 1024, 4096)
) -> Dict:
    """Fig. 5: Section 2.4's no-cache analytical speedup vs concurrency.

    Paper: gains grow with concurrent rays, reaching 3-4x for most scenes;
    the smallest-BVH scenes (WKND, SHIP) stand out highest.
    """
    setup = context.setup
    wanted = list(context.scenes())
    # Figure 5 includes the two small extra scenes when running the full suite.
    if set(wanted) == set(scene_names()):
        wanted = ["WKND", "SHIP"] + wanted
    rows = []
    for scene_name in wanted:
        try:
            scene, bvh = scene_and_bvh(scene_name, setup)
            traces = collect_workload_traces(
                scene, bvh, setup.image_width, setup.image_height, setup.max_bounces
            )
            sweep = concurrency_sweep(traces, bvh, levels)
        except ReproError as exc:
            rows.append(_quarantine_row(scene_name, exc, 1 + len(levels)))
            continue
        rows.append([scene_name] + [f"{sweep[l]:.2f}" for l in levels])
    return {
        "title": "Figure 5: analytical treelet speedup vs concurrent rays (paper: 3-4x at 4096)",
        "headers": ["scene"] + [f"{l} rays" for l in levels],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figure 10: overall speedup
# ---------------------------------------------------------------------------


def fig10_overall_speedup(context: ExperimentContext) -> Dict:
    """Fig. 10: VTQ vs baseline and vs Treelet Prefetching.

    Paper: VTQ averages 1.95x over baseline (up to 2.55x) and 1.43x over
    treelet prefetching; SPNZA and CHSNT gain least.
    """
    vtq = vtq_default(context)
    rows = []
    over_base, over_pf = [], []
    for scene in context.scenes():
        try:
            base = run_case(scene, "baseline", context)
            pf = run_case(scene, "prefetch", context)
            full = run_case(scene, "vtq", context, vtq=vtq)
        except ReproError as exc:
            rows.append(_quarantine_row(scene, exc, 4))
            continue
        s_base = base["cycles"] / full["cycles"]
        s_pf = pf["cycles"] / full["cycles"]
        rows.append(
            [scene, f"{pf['cycles'] and base['cycles'] / pf['cycles']:.2f}",
             f"{s_base:.2f}", f"{s_pf:.2f}"]
        )
        over_base.append(s_base)
        over_pf.append(s_pf)
    if over_base:
        rows.append(
            ["GEOMEAN", "", f"{_geomean(over_base):.2f}", f"{_geomean(over_pf):.2f}"]
        )
    return {
        "title": "Figure 10: overall speedup (paper: VTQ 1.95x over baseline, 1.43x over prefetching)",
        "headers": ["scene", "prefetch/baseline", "VTQ/baseline", "VTQ/prefetch"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Gaussian-splat workload: policy head-to-head
# ---------------------------------------------------------------------------


def fig_gaussian_policies(
    context: ExperimentContext, scenes: Optional[List[str]] = None
) -> Dict:
    """Baseline vs prefetch vs VTQ on the procedural splat scenes.

    The Figure 10 question asked of a non-triangle primitive: does
    treelet scheduling still pay when leaf work is a Gaussian alpha
    evaluation (``gaussian_alpha_cycles`` per candidate plus
    ``gaussian_blend_cycles`` per leaf lane — see docs/MODEL.md) instead
    of a Möller–Trumbore test?  Splat leaves are fatter (64 B
    primitives, overlapping bounds) and the leaf-cost term shifts the
    compute/memory balance, so the VTQ margin here is the interesting
    number, not a rerun of the triangle table.
    """
    from repro.scenes.gaussians import gaussian_scene_names, is_gaussian_scene

    vtq = vtq_default(context)
    wanted = scenes or [s for s in context.scenes() if is_gaussian_scene(s)]
    if not wanted:
        # The default context lists triangle scenes only; the splat
        # table always covers the registered gaussian suite.
        wanted = gaussian_scene_names()
    rows = []
    over_base, over_pf = [], []
    for scene in wanted:
        try:
            splats = scene_and_bvh(scene, context.setup)[0].mesh.triangle_count
            base = run_case(scene, "baseline", context)
            pf = run_case(scene, "prefetch", context)
            full = run_case(scene, "vtq", context, vtq=vtq)
        except ReproError as exc:
            rows.append(_quarantine_row(scene, exc, 8))
            continue
        s_base = base["cycles"] / full["cycles"]
        s_pf = pf["cycles"] / full["cycles"]
        rows.append(
            [
                scene,
                str(splats),
                f"{base['cycles']:,.0f}",
                f"{pf['cycles']:,.0f}",
                f"{full['cycles']:,.0f}",
                f"{base['cycles'] / pf['cycles']:.2f}",
                f"{s_base:.2f}",
                f"{s_pf:.2f}",
            ]
        )
        over_base.append(s_base)
        over_pf.append(s_pf)
    if over_base:
        rows.append(
            ["GEOMEAN", "", "", "", "",
             "", f"{_geomean(over_base):.2f}", f"{_geomean(over_pf):.2f}"]
        )
    return {
        "title": "Gaussian splats: policy head-to-head on the splat suite "
        "(leaf cost = alpha evaluation, not triangle tests)",
        "headers": [
            "scene", "splats", "baseline cyc", "prefetch cyc", "VTQ cyc",
            "prefetch/baseline", "VTQ/baseline", "VTQ/prefetch",
        ],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figure 11: miss rate over time (LANDS)
# ---------------------------------------------------------------------------


def fig11_missrate_over_time(
    context: ExperimentContext, scene: Optional[str] = None, buckets: int = 12
) -> Dict:
    """Fig. 11: L1 miss rate over time, treelet-stationary vs baseline.

    Paper (LANDS): the baseline plateaus near 60%; permanent treelet-
    stationary mode starts as low as 9% and climbs past the baseline
    (75-80%) once queues become underpopulated.
    """
    scene = scene or ("LANDS" if "LANDS" in context.scenes() else context.scenes()[-1])
    try:
        base = run_case(scene, "baseline", context)
        naive = run_case(scene, "vtq", context, vtq=vtq_default(context).naive())
    except ReproError as exc:
        return {
            "title": f"Figure 11: L1 BVH miss rate over time, {scene}",
            "headers": ["progress", "baseline", "treelet-stationary (naive)"],
            "rows": [_quarantine_row(scene, exc, 3)],
            "series": {"baseline": [], "treelet_stationary": []},
        }

    def resample(series, n):
        if not series:
            return []
        xs = [p[0] for p in series]
        span = max(xs[-1] - xs[0], 1.0)
        out = [[] for _ in range(n)]
        for x, rate in series:
            idx = min(int((x - xs[0]) / span * n), n - 1)
            out[idx].append(rate)
        return [float(np.mean(b)) if b else float("nan") for b in out]

    base_series = resample(base["l1_timeline"], buckets)
    naive_series = resample(naive["l1_timeline"], buckets)
    rows = []
    for i in range(buckets):
        rows.append(
            [f"{(i + 0.5) / buckets:.0%}",
             f"{base_series[i]:.3f}" if i < len(base_series) else "-",
             f"{naive_series[i]:.3f}" if i < len(naive_series) else "-"]
        )
    return {
        "title": f"Figure 11: L1 BVH miss rate over time, {scene} "
        "(paper: treelet mode starts ~9%, ends above baseline)",
        "headers": ["progress", "baseline", "treelet-stationary (naive)"],
        "rows": rows,
        "series": {"baseline": base_series, "treelet_stationary": naive_series},
    }


# ---------------------------------------------------------------------------
# Figure 12: grouping underpopulated queues
# ---------------------------------------------------------------------------


def fig12_grouping_thresholds(
    context: ExperimentContext, thresholds=(32, 64, 128)
) -> Dict:
    """Fig. 12: naive treelet queues vs grouping at several queue thresholds.

    Paper: grouping at 128 is ~8x faster than the naive implementation,
    but still ~5% slower than the baseline without warp repacking.
    """
    base_vtq = vtq_default(context)
    naive_cfg = base_vtq.naive()
    rows = []
    per_variant: Dict[str, List[float]] = {"naive": []}
    for t in thresholds:
        per_variant[f"group@{t}"] = []
    for scene in context.scenes():
        try:
            base = run_case(scene, "baseline", context)
            row = [scene]
            scene_speeds = {}
            naive = run_case(scene, "vtq", context, vtq=naive_cfg)
            s = base["cycles"] / naive["cycles"]
            scene_speeds["naive"] = s
            row.append(f"{s:.2f}")
            for t in thresholds:
                cfg = replace(base_vtq, queue_threshold=t, repack_enabled=False)
                m = run_case(scene, "vtq", context, vtq=cfg)
                s = base["cycles"] / m["cycles"]
                scene_speeds[f"group@{t}"] = s
                row.append(f"{s:.2f}")
        except ReproError as exc:
            rows.append(_quarantine_row(scene, exc, 2 + len(thresholds)))
            continue
        for k, s in scene_speeds.items():
            per_variant[k].append(s)
        rows.append(row)
    if per_variant["naive"]:
        rows.append(
            ["GEOMEAN"] + [f"{_geomean(per_variant[k]):.2f}" for k in per_variant]
        )
    return {
        "title": "Figure 12: grouping underpopulated treelet queues "
        "(paper: ~8x over naive; ~5% below baseline at threshold 128)",
        "headers": ["scene", "naive"] + [f"group@{t}" for t in thresholds],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figure 13: warp repacking
# ---------------------------------------------------------------------------


def fig13_warp_repacking(
    context: ExperimentContext, thresholds=(8, 16, 22)
) -> Dict:
    """Fig. 13a/b: repacking speedup and SIMT efficiency.

    Paper: no repacking = 5% slowdown vs baseline with SIMT ~0.33;
    threshold 16 gives 1.84x, threshold 22 gives 1.95x with SIMT ~0.82
    (baseline SIMT ~0.37).
    """
    base_vtq = vtq_default(context)
    rows = []
    speeds: Dict[str, List[float]] = {"no repack": []}
    simts: Dict[str, List[float]] = {"baseline": [], "no repack": []}
    for t in thresholds:
        speeds[f"repack@{t}"] = []
        simts[f"repack@{t}"] = []
    for scene in context.scenes():
        try:
            base = run_case(scene, "baseline", context)
            row = [scene]
            scene_speeds, scene_simts = {}, {"baseline": base["simt_efficiency"]}
            off = run_case(
                scene, "vtq", context, vtq=replace(base_vtq, repack_enabled=False)
            )
            scene_speeds["no repack"] = base["cycles"] / off["cycles"]
            scene_simts["no repack"] = off["simt_efficiency"]
            row.append(f"{base['cycles'] / off['cycles']:.2f}")
            for t in thresholds:
                m = run_case(
                    scene, "vtq", context, vtq=replace(base_vtq, repack_threshold=t)
                )
                scene_speeds[f"repack@{t}"] = base["cycles"] / m["cycles"]
                scene_simts[f"repack@{t}"] = m["simt_efficiency"]
                row.append(f"{base['cycles'] / m['cycles']:.2f}")
        except ReproError as exc:
            rows.append(_quarantine_row(scene, exc, 2 + len(thresholds)))
            continue
        for k, s in scene_speeds.items():
            speeds[k].append(s)
        for k, s in scene_simts.items():
            simts[k].append(s)
        rows.append(row)
    if speeds["no repack"]:
        rows.append(["GEOMEAN"] + [f"{_geomean(speeds[k]):.2f}" for k in speeds])
    simt_table = [
        [k, f"{np.mean(v):.2f}" if v else "-"] for k, v in simts.items()
    ]
    return {
        "title": "Figure 13a: warp repacking speedup "
        "(paper: none=0.95x, 16=1.84x, 22=1.95x)",
        "headers": ["scene", "no repack"] + [f"repack@{t}" for t in thresholds],
        "rows": rows,
        "simt_table": {
            "title": "Figure 13b: SIMT efficiency (paper: baseline 0.37, "
            "no-repack 0.33, repack@22 0.82)",
            "headers": ["variant", "SIMT efficiency"],
            "rows": simt_table,
        },
    }


# ---------------------------------------------------------------------------
# Figures 14 & 15: traversal-mode breakdowns
# ---------------------------------------------------------------------------


def _mode_fraction_table(context: ExperimentContext, field: str, title: str) -> Dict:
    vtq = vtq_default(context)
    rows = []
    sums = {m.value: [] for m in TraversalMode}
    for scene in context.scenes():
        try:
            m = run_case(scene, "vtq", context, vtq=vtq)
        except ReproError as exc:
            rows.append(_quarantine_row(scene, exc, 1 + len(TraversalMode)))
            continue
        fr = m[field]
        rows.append(
            [scene]
            + [f"{fr[mode.value]:.3f}" for mode in TraversalMode]
        )
        for mode in TraversalMode:
            sums[mode.value].append(fr[mode.value])
    if any(sums.values()):
        rows.append(
            ["MEAN"] + [f"{np.mean(sums[m.value]):.3f}" for m in TraversalMode]
        )
    return {
        "title": title,
        "headers": ["scene", "initial ray-stat", "treelet-stat", "final ray-stat"],
        "rows": rows,
    }


def fig14_mode_cycles(context: ExperimentContext) -> Dict:
    """Fig. 14: cycle share per traversal mode.

    Paper: short initial phase; the majority of cycles land in the final
    ray-stationary phase.
    """
    return _mode_fraction_table(
        context,
        "mode_cycle_fractions",
        "Figure 14: cycle distribution across traversal modes "
        "(paper: final ray-stationary dominates)",
    )


def fig15_mode_tests(context: ExperimentContext) -> Dict:
    """Fig. 15: intersection-test share per traversal mode.

    Paper: the treelet-stationary phase handles up to 52% of tests,
    15% on average.
    """
    return _mode_fraction_table(
        context,
        "mode_test_fractions",
        "Figure 15: intersection tests per traversal mode "
        "(paper: treelet-stationary avg 15%, up to 52%)",
    )


# ---------------------------------------------------------------------------
# Figure 16: ray virtualization overhead
# ---------------------------------------------------------------------------


def fig16_virtualization_overhead(context: ExperimentContext) -> Dict:
    """Fig. 16: slowdown from CTA save/restore (paper: ~10% on average)."""
    vtq = vtq_default(context)
    ideal_cfg = replace(vtq, virtualization_overheads=False)
    rows = []
    overheads = []
    for scene in context.scenes():
        try:
            real = run_case(scene, "vtq", context, vtq=vtq)
            ideal = run_case(scene, "vtq", context, vtq=ideal_cfg)
        except ReproError as exc:
            rows.append(_quarantine_row(scene, exc, 2))
            continue
        overhead = real["cycles"] / ideal["cycles"] - 1.0
        overheads.append(overhead)
        rows.append([scene, f"{overhead * 100:.1f}%"])
    if overheads:
        rows.append(["MEAN", f"{np.mean(overheads) * 100:.1f}%"])
    return {
        "title": "Figure 16: ray virtualization overhead (paper: ~10% slowdown)",
        "headers": ["scene", "slowdown from CTA save/restore"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figure 17: energy
# ---------------------------------------------------------------------------


def fig17_energy(context: ExperimentContext) -> Dict:
    """Fig. 17: energy of treelet queues relative to the baseline.

    Paper: treelet queues save ~60% energy; ray virtualization consumes
    ~11% of the design's total energy (mostly CTA state movement).
    """
    vtq = vtq_default(context)
    rows = []
    rels, virt_shares = [], []
    for scene in context.scenes():
        try:
            base = run_case(scene, "baseline", context)
            full = run_case(scene, "vtq", context, vtq=vtq)
        except ReproError as exc:
            rows.append(_quarantine_row(scene, exc, 3))
            continue
        rel = full["energy"]["total"] / base["energy"]["total"]
        virt = full["energy"]["cta_state"] / full["energy"]["total"]
        rels.append(rel)
        virt_shares.append(virt)
        rows.append([scene, f"{rel:.2f}", f"{virt * 100:.1f}%"])
    if rels:
        rows.append(
            ["MEAN", f"{np.mean(rels):.2f}", f"{np.mean(virt_shares) * 100:.1f}%"]
        )
    return {
        "title": "Figure 17: energy vs baseline (paper: VTQ ~0.4x baseline; "
        "virtualization ~11% of VTQ total)",
        "headers": ["scene", "VTQ energy / baseline", "virtualization share"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Tables and Section 6.5
# ---------------------------------------------------------------------------


def table1_configuration(context: ExperimentContext) -> Dict:
    """Table 1: the simulated configuration actually in use."""
    gpu = context.setup.gpu
    rows = [[k, str(v)] for k, v in asdict(gpu).items()]
    return {
        "title": "Table 1: simulated GPU configuration (scale model; "
        "latencies verbatim from the paper)",
        "headers": ["parameter", "value"],
        "rows": rows,
    }


def table2_scenes(context: ExperimentContext) -> Dict:
    """Table 2: the evaluation scenes, paper sizes vs our scale models."""
    rows = []
    for name in context.scenes():
        spec = scene_spec(name)
        try:
            scene, bvh = scene_and_bvh(name, context.setup)
        except ReproError as exc:
            rows.append(_quarantine_row(name, exc, 6))
            continue
        rows.append(
            [
                name,
                f"{spec.paper_bvh_mb:.2f}",
                f"{spec.paper_tris / 1e6:.2f}M",
                f"{scene.mesh.triangle_count}",
                f"{bvh.size_megabytes() * 1024:.0f}KB",
                f"{bvh.treelet_count}",
            ]
        )
    return {
        "title": "Table 2: evaluation scenes (paper assets -> synthetic scale models)",
        "headers": [
            "scene", "paper BVH MB", "paper tris", "our tris", "our BVH", "treelets",
        ],
        "rows": rows,
    }


def sec65_area_overheads(context: ExperimentContext) -> Dict:
    """Section 6.5: hardware table sizes, plus observed peak occupancies."""
    vtq = vtq_default(context)
    gpu = context.setup.gpu
    sizes = area_overheads(VTQConfig(), max_virtual_rays=4096)
    rows = [
        ["count table (paper cfg)", f"{sizes['count_table_bytes'] / 1024:.2f}KB",
         "2.2KB in paper"],
        ["queue table (paper cfg)", f"{sizes['queue_table_bytes'] / 1024:.2f}KB",
         "6.29KB in paper"],
        ["ray data (paper cfg)", f"{sizes['ray_data_bytes'] / 1024:.0f}KB",
         "128KB in paper"],
    ]
    peaks_q, peaks_c = [], []
    for scene in context.scenes():
        try:
            m = run_case(scene, "vtq", context, vtq=vtq)
        except ReproError as exc:
            rows.append(_quarantine_row(scene, exc, 3))
            continue
        peaks_q.append(m["queue_table_peak_entries"])
        peaks_c.append(m["count_table_peak_entries"])
    if peaks_q:
        rows.append(["peak queue-table entries (observed)", str(max(peaks_q)),
                     f"capacity {vtq.queue_table_entries}"])
        rows.append(["peak count-table entries (observed)", str(max(peaks_c)),
                     f"capacity {vtq.count_table_entries}; paper saw <=549"])
    return {
        "title": "Section 6.5: area overheads",
        "headers": ["structure", "size / value", "reference"],
        "rows": rows,
    }


def figure_registry() -> Dict:
    """Name -> figure function, the single source for CLI and tooling.

    The names are what ``python -m repro figure <name>`` accepts and what
    :func:`repro.experiments.parallel.cases_for_figure` enumerates cases
    for.
    """
    return {
        "table1": table1_configuration,
        "table2": table2_scenes,
        "fig1": fig01_baseline_bottlenecks,
        "fig5": fig05_analytical_model,
        "fig10": fig10_overall_speedup,
        "gaussian": fig_gaussian_policies,
        "fig11": fig11_missrate_over_time,
        "fig12": fig12_grouping_thresholds,
        "fig13": fig13_warp_repacking,
        "fig14": fig14_mode_cycles,
        "fig15": fig15_mode_tests,
        "fig16": fig16_virtualization_overhead,
        "fig17": fig17_energy,
        "sec65": sec65_area_overheads,
    }
