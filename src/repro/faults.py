"""Deterministic, seedable fault injection.

Long multi-case sweeps must degrade gracefully when something breaks —
and the error paths that make that possible need to be *provably*
exercised, not hoped at.  This module is the single switchboard: code at
known fault sites asks :func:`should_fire` whether to misbehave, and
tests install :class:`FaultSpec`\\ s (scoped by a context manager) to
corrupt cache files, poison meshes with NaNs, truncate BVH blobs, stall
a simulation past its budget, or break a sanitizer invariant.

Everything is deterministic: a spec's ``seed`` plus the site name and
access key fully determine both whether a probabilistic fault fires and
the random bytes any corruption helper uses, so a failing test replays
exactly.

With no specs installed (the default, including all of production) every
hook is a cheap no-op returning ``None``.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

# -- fault sites -------------------------------------------------------------------
#
# Each constant names one place in the library that consults the registry.

CACHE_CORRUPT = "experiments.cache.corrupt"    # damage a result file after writing
CASE_FAIL = "experiments.case.fail"            # make run_case raise SimulationError
SIM_STALL = "gpusim.stall"                     # inflate an engine's cycle counter
STATS_CORRUPT = "gpusim.stats.corrupt"         # break a sanitizer invariant
MESH_NAN = "scenes.mesh.nan"                   # poison loaded geometry with NaNs
BVH_TRUNCATE = "bvh.serialize.truncate"        # truncate a saved BVH blob

# Process-level sites (repro.resilience / docs/ROBUSTNESS.md): these fire
# in worker processes and transport paths, exercising the supervision,
# retry and checkpoint machinery rather than the simulation itself.
WORKER_KILL = "resilience.worker.kill"         # worker process dies (os._exit)
WORKER_HANG = "resilience.worker.hang"         # worker stops making progress
SOCKET_DROP = "service.socket.drop"            # client connection torn down
DISK_FULL = "resilience.disk.full"             # a journal/spool write hits ENOSPC
SLOW_IO = "resilience.io.slow"                 # an I/O path stalls for a while

ALL_SITES = (
    CACHE_CORRUPT,
    CASE_FAIL,
    SIM_STALL,
    STATS_CORRUPT,
    MESH_NAN,
    BVH_TRUNCATE,
    WORKER_KILL,
    WORKER_HANG,
    SOCKET_DROP,
    DISK_FULL,
    SLOW_IO,
)


@dataclass(frozen=True)
class FaultSpec:
    """One installed fault.

    Attributes
    ----------
    site:
        Which hook fires (one of :data:`ALL_SITES`).
    match:
        Substring the site's access key must contain; ``""`` matches all
        keys.  Keys are site-specific, e.g. ``"SPNZA:vtq"`` for
        experiment cases or the scene name for mesh poisoning.
    probability:
        Chance of firing per distinct key, decided deterministically from
        ``(seed, site, key)`` — the same key always gets the same verdict.
    seed:
        Root of all randomness this spec uses.
    max_fires:
        Stop firing after this many hits (``None`` = unlimited).
    payload:
        Site-specific parameters (e.g. ``{"mode": "truncate"}`` for file
        corruption, ``{"invariant": "queues"}`` for stats corruption).
    """

    site: str
    match: str = ""
    probability: float = 1.0
    seed: int = 0
    max_fires: Optional[int] = None
    payload: Dict = field(default_factory=dict)

    def __post_init__(self):
        if self.site not in ALL_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {ALL_SITES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")


def _digest(seed: int, site: str, key: str) -> int:
    blob = f"{seed}|{site}|{key}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def _hash01(seed: int, site: str, key: str) -> float:
    """A deterministic uniform(0, 1) draw for a (spec, key) pair."""
    return _digest(seed, site, key) / float(1 << 64)


class FaultRegistry:
    """The set of active faults plus a log of what fired."""

    def __init__(self):
        self._specs: List[FaultSpec] = []
        self._fire_counts: Dict[int, int] = {}
        self.fired: List[Tuple[str, str]] = []  # (site, key) in fire order

    # -- installation -----------------------------------------------------------

    def install(self, spec: FaultSpec) -> FaultSpec:
        self._specs.append(spec)
        return spec

    def remove(self, spec: FaultSpec) -> None:
        """Uninstall one spec (no-op when absent)."""
        try:
            self._specs.remove(spec)
        except ValueError:
            pass

    def clear(self) -> None:
        self._specs.clear()
        self._fire_counts.clear()
        self.fired.clear()

    def enabled(self) -> bool:
        return bool(self._specs)

    # -- firing ---------------------------------------------------------------------

    def should_fire(self, site: str, key: str = "") -> Optional[FaultSpec]:
        """The first installed spec that fires for ``(site, key)``, or None.

        Firing is recorded (for test assertions and ``max_fires``).
        """
        if not self._specs:
            return None
        for spec in self._specs:
            if spec.site != site:
                continue
            if spec.match and spec.match not in key:
                continue
            count = self._fire_counts.get(id(spec), 0)
            if spec.max_fires is not None and count >= spec.max_fires:
                continue
            if spec.probability < 1.0 and (
                _hash01(spec.seed, site, key) >= spec.probability
            ):
                continue
            self._fire_counts[id(spec)] = count + 1
            self.fired.append((site, key))
            return spec
        return None

    def rng(self, spec: FaultSpec, key: str = "") -> np.random.Generator:
        """The deterministic RNG a firing spec's corruption should use."""
        return np.random.default_rng(_digest(spec.seed, spec.site, key))


_REGISTRY = FaultRegistry()


def registry() -> FaultRegistry:
    return _REGISTRY


def install(spec: FaultSpec) -> FaultSpec:
    return _REGISTRY.install(spec)


def clear() -> None:
    _REGISTRY.clear()


def enabled() -> bool:
    return _REGISTRY.enabled()


def should_fire(site: str, key: str = "") -> Optional[FaultSpec]:
    return _REGISTRY.should_fire(site, key)


def rng(spec: FaultSpec, key: str = "") -> np.random.Generator:
    return _REGISTRY.rng(spec, key)


@contextmanager
def injected(*specs: FaultSpec) -> Iterator[FaultRegistry]:
    """Install ``specs`` for the duration of a ``with`` block.

    Only the specs installed here are removed on exit, so nesting works.
    """
    for spec in specs:
        _REGISTRY.install(spec)
    try:
        yield _REGISTRY
    finally:
        for spec in specs:
            _REGISTRY.remove(spec)


# -- process-level hook helpers -----------------------------------------------------
#
# Call sites for SLOW_IO / DISK_FULL are one-liners: the helpers fold the
# should_fire check and the misbehaviour together so I/O paths stay legible.


def maybe_slow_io(key: str = "") -> None:
    """SLOW_IO hook: stall for ``payload["seconds"]`` (default 0.01s)."""
    spec = should_fire(SLOW_IO, key)
    if spec is not None:
        import time

        time.sleep(float(spec.payload.get("seconds", 0.01)))


def maybe_disk_full(key: str = "") -> None:
    """DISK_FULL hook: raise the ``OSError`` a full disk would."""
    spec = should_fire(DISK_FULL, key)
    if spec is not None:
        import errno

        raise OSError(
            errno.ENOSPC, "No space left on device (injected fault)", key
        )


# -- corruption helpers ----------------------------------------------------------
#
# Shared by the library's fault sites and by tests that damage artifacts
# directly (e.g. truncating a cache file that an earlier run wrote).


def corrupt_file(
    path: Union[str, Path],
    generator: np.random.Generator,
    mode: str = "truncate",
) -> None:
    """Deterministically damage a file in place.

    ``truncate`` keeps a random 10-90% prefix; ``garbage`` overwrites a
    random span with random bytes; ``empty`` leaves a zero-byte file.
    """
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        keep = int(len(data) * generator.uniform(0.1, 0.9))
        path.write_bytes(data[:keep])
    elif mode == "garbage":
        if not data:
            return
        blob = bytearray(data)
        span = max(1, len(blob) // 4)
        start = int(generator.integers(0, max(1, len(blob) - span)))
        blob[start : start + span] = bytes(
            generator.integers(0, 256, size=span, dtype=np.uint8)
        )
        path.write_bytes(bytes(blob))
    elif mode == "empty":
        path.write_bytes(b"")
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")


def poison_mesh_vertices(mesh, generator: np.random.Generator, fraction: float = 0.02):
    """A copy of ``mesh`` with a fraction of its vertices set to NaN."""
    from repro.geometry.triangle import TriangleMesh

    vertices = np.array(mesh.vertices, copy=True)
    count = max(1, int(round(len(vertices) * fraction)))
    picks = generator.choice(len(vertices), size=min(count, len(vertices)), replace=False)
    vertices[picks] = np.nan
    return TriangleMesh(
        vertices, np.array(mesh.indices, copy=True), np.array(mesh.material_ids, copy=True)
    )
