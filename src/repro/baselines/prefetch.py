"""Treelet Prefetching (Chou et al., MICRO 2023).

The prefetcher watches the rays in the RT unit and, when enough of them
are inside or headed into the same treelet, prefetches that *entire*
treelet into the L1.  Chou et al. report a 30% speedup — and that 43.5%
of prefetched data is never used, since it is impossible to know which
nodes inside a treelet a ray will actually visit.  Both effects are
first-class here: used/unused lines are tracked per prefetch, and the
prefetch traffic is charged against DRAM.

Model notes:

* With a warp buffer of size one (Table 1), "rays in the RT unit" are the
  current warp's rays.  The popularity vote counts each ray's *current*
  treelet and the treelet at the front of its treelet stack (the one it
  enters next) — the two places Chou et al.'s two-stack traversal order
  says its upcoming accesses live.
* A prefetch fires when a demand miss lands in a treelet whose vote count
  reaches ``min_votes``: the first ray to arrive pulls the whole treelet
  in for the others.  Unpopular treelets are never prefetched (fetching
  32 lines for one ray is the naive-treelet mistake the paper's own
  Figure 12 demonstrates).
* Prefetches are asynchronous: they install lines without stalling the
  demand access, but their DRAM traffic and (un)used-line statistics are
  tracked — the bandwidth cost the paper criticizes.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Set

from repro.gpusim.config import GPUConfig
from repro.gpusim.memory import AccessKind, MemorySystem
from repro.gpusim.rt_unit import BaselineRTUnit
from repro.gpusim.stats import SimStats, TraversalMode
from repro.gpusim.warp import SimRay, TraceWarp, warp_step


class PrefetchRTUnit(BaselineRTUnit):
    """Baseline RT unit plus the most-popular-treelet prefetcher."""

    def __init__(
        self,
        bvh,
        config: GPUConfig,
        mem: MemorySystem,
        stats: SimStats,
        reevaluate_steps: int = 4,
        min_votes: int = 1,
        cycle_budget: Optional[float] = None,
    ):
        super().__init__(bvh, config, mem, stats, cycle_budget=cycle_budget)
        self.reevaluate_steps = reevaluate_steps
        # Votes a treelet needs before a demand miss in it triggers a
        # whole-treelet prefetch.  The default of 1 prefetches every
        # treelet the rays enter — which is also what produces Chou et
        # al.'s signature cost: a large fraction of prefetched lines are
        # never used.  Raising it makes the prefetcher conservative.
        self.min_votes = min_votes
        self._votes: Counter = Counter()
        # line -> used?  for unused-prefetch accounting, per treelet
        self._outstanding: Dict[int, Dict[int, bool]] = {}
        # line -> treelet (or None outside the BVH image): pure memo over
        # the static layout, so repeated demand misses skip the bisect.
        self._treelet_of_line: Dict[int, Optional[int]] = {}
        mem.l1_miss_hook = self._on_demand_miss

    # -- prefetch machinery ------------------------------------------------------

    def _refresh_votes(self, rays: List[SimRay]) -> None:
        """Re-count which treelets the RT unit's rays care about."""
        votes: Counter = Counter()
        for ray in rays:
            state = ray.state
            if state.finished():
                continue
            if state.has_current_work():
                votes[state.current_treelet] += 1
            nxt = state.next_treelet()
            if nxt is not None:
                votes[nxt] += 1
        self._votes = votes

    def _popular_treelets(self) -> Set[int]:
        """Treelets whose current vote count clears ``min_votes``."""
        return {t for t, v in self._votes.items() if v >= self.min_votes}

    def _on_demand_miss(self, line: int) -> None:
        """A BVH demand miss: prefetch its treelet if it is popular."""
        try:
            treelet = self._treelet_of_line[line]
        except KeyError:
            try:
                treelet = self.bvh.layout.treelet_of_address(
                    line * self.config.line_bytes
                )
            except ValueError:  # pragma: no cover - access outside BVH image
                treelet = None
            self._treelet_of_line[line] = treelet
        if treelet is None:  # pragma: no cover - access outside BVH image
            return
        if treelet in self._outstanding:
            return  # already prefetched and still being tracked
        if self._votes.get(treelet, 0) < self.min_votes:
            return
        self._issue_prefetch(treelet)

    def _issue_prefetch(self, treelet: int) -> None:
        """Install the treelet's lines; account traffic and unused lines."""
        lines = self.bvh.treelet_lines[treelet]
        new_lines = [line for line in lines if not self.mem.l1.contains(line)]
        self.mem.l1.insert_many(new_lines)
        self.stats.prefetch_lines += len(new_lines)
        self.stats.traffic_bytes["prefetch"] += len(new_lines) * self.config.line_bytes
        self.stats.traffic_bytes["dram"] += len(new_lines) * self.config.line_bytes
        self._outstanding[treelet] = {line: False for line in new_lines}

    def _settle_outstanding(self, keep: Optional[Set[int]] = None) -> None:
        """Close out used/unused accounting for stale prefetches."""
        keep = keep or set()
        for treelet in list(self._outstanding):
            if treelet in keep:
                continue
            for line, used in self._outstanding.pop(treelet).items():
                if not used:
                    self.stats.prefetch_unused_lines += 1

    def _note_accesses(self, rays: List[SimRay]) -> None:
        """Mark prefetched lines as used when a ray is about to touch them."""
        if not self._outstanding:
            return
        flat = {}
        for per_treelet in self._outstanding.values():
            flat.update(dict.fromkeys(per_treelet, per_treelet))
        for ray in rays:
            state = ray.state
            if state.finished() or not state.current_stack:
                continue
            item = state.current_stack[-1][0]
            for line in self.bvh.item_lines[item]:
                holder = flat.get(line)
                if holder is not None:
                    holder[line] = True

    def _note_candidate_lines(self, rays: List[SimRay]) -> List[int]:
        """The lines :meth:`_note_accesses` would consider for ``rays``.

        Unlike ``_note_accesses`` itself this does not depend on what is
        currently outstanding (a cache-dependent fact), so the memory-trace
        recorder can capture the candidates unconditionally and replay can
        re-apply them against its own outstanding table.
        """
        lines: List[int] = []
        for ray in rays:
            state = ray.state
            if state.finished() or not state.current_stack:
                continue
            item = state.current_stack[-1][0]
            lines.extend(self.bvh.item_lines[item])
        return lines

    # -- overridden processing ------------------------------------------------------

    def process_warp(self, warp: TraceWarp) -> None:
        recorder = self.mem.recorder
        if recorder is not None:
            recorder.begin_warp(warp)
        active = warp.active_rays()
        launched = len(active)
        steps = 0
        while active:
            if steps % self.reevaluate_steps == 0:
                # With a warp buffer of one, "rays in the RT unit" are the
                # current warp's rays.
                self._refresh_votes(active)
                if recorder is not None:
                    recorder.pf_refresh(dict(self._votes))
                # Stop tracking prefetches for treelets nobody wants now.
                self._settle_outstanding(keep=self._popular_treelets())
            # Items at the rays' stack tops are what the next step fetches;
            # mark any the prefetcher brought in as used.
            if recorder is not None:
                recorder.pf_note(self._note_candidate_lines(active))
            self._note_accesses(active)
            latency, stepped, _ = warp_step(
                self.bvh, active, self.mem, self.config, self.stats,
                self.cycle, self._mode,
            )
            if not stepped:
                break
            self.cycle += latency
            steps += 1
            active = [r for r in active if not r.finished()]
        # Rays can finish inside a step and be excluded from ``stepped``;
        # refilter before counting completions.
        active = [r for r in active if not r.finished()]
        self.stats.rays_completed += launched - len(active)
        self.stats.warps_processed += 1
        if recorder is not None:
            recorder.end_warp(self.cycle)

    def run(self, on_complete=None) -> float:
        recorder = self.mem.recorder
        if recorder is not None:
            recorder.note_prefetch_params(self.reevaluate_steps, self.min_votes)
        result = super().run(on_complete)
        self._settle_outstanding()
        return result
