"""Comparison baselines.

:mod:`repro.baselines.prefetch` implements Treelet Prefetching (Chou et
al., MICRO 2023), the most recent prior treelet work on RT-capable GPUs
and the paper's main comparison point (Figure 10).
"""

from repro.baselines.prefetch import PrefetchRTUnit

__all__ = ["PrefetchRTUnit"]
