"""Cross-cutting reliability layer: retry, breakers, supervision, chaos.

The subsystems this package hardens each had an ad-hoc answer to
failure; ``repro.resilience`` gives them one shared vocabulary:

* :class:`RetryPolicy` (:mod:`~repro.resilience.retry`) — unified
  backoff with decorrelated jitter, used by the scheduler's
  crash-retry, the sync client's idempotent verbs and flock claims.
* :class:`CircuitBreaker` / :class:`BreakerBoard`
  (:mod:`~repro.resilience.breaker`) — per-scene failure isolation in
  the scheduler.
* :class:`SupervisedPool` (:mod:`~repro.resilience.supervisor`) —
  worker heartbeats, crash/hang attribution, poisoned-case quarantine.
* :class:`SweepJournal` (:mod:`~repro.resilience.journal`) —
  crash-safe sweep checkpoint/resume.
* :func:`run_chaos_sweep` (:mod:`~repro.resilience.chaos`) — the
  deterministic chaos harness that proves all of the above under
  seeded process-level faults.

Everything reports through ``repro_resilience_*`` metrics in
:mod:`repro.obs`.
"""

from repro.resilience.breaker import BreakerBoard, CircuitBreaker
from repro.resilience.chaos import ChaosReport, build_schedule, run_chaos_sweep
from repro.resilience.journal import (
    SweepJournal,
    deserialize_failure,
    journal_enabled,
    serialize_failure,
)
from repro.resilience.retry import (
    CLIENT_POLICY,
    FLOCK_POLICY,
    RetryPolicy,
    flock_claim,
)
from repro.resilience.supervisor import (
    KILL_EXIT_CODE,
    SupervisedPool,
    hang_timeout_from_env,
    max_case_crashes_from_env,
)

__all__ = [
    "BreakerBoard",
    "ChaosReport",
    "CircuitBreaker",
    "CLIENT_POLICY",
    "FLOCK_POLICY",
    "KILL_EXIT_CODE",
    "RetryPolicy",
    "SupervisedPool",
    "SweepJournal",
    "build_schedule",
    "deserialize_failure",
    "flock_claim",
    "hang_timeout_from_env",
    "journal_enabled",
    "max_case_crashes_from_env",
    "run_chaos_sweep",
    "serialize_failure",
]
