"""Deterministic chaos harness: seeded process-level faults + invariants.

``repro chaos`` (and ``tools/chaos_smoke.py`` in CI) runs the same sweep
twice — once clean, once under a seeded schedule of process-level
faults — and asserts the three resilience invariants:

1. **No case lost** — every submitted case resolves to metrics or a
   quarantined failure; nothing vanishes.
2. **Typed reasons** — every failure carries a machine-usable
   ``error_type`` (``WorkerCrash``, ``WorkerHang``, …), never a bare
   string soup.
3. **Byte-identical survivors** — every case that produced metrics
   under chaos produced *exactly* the metrics of the fault-free run
   (``json.dumps(..., sort_keys=True)`` equality, the same discipline
   as ``tests/test_obs_equivalence.py``).

The schedule is a pure function of ``(seed, case list)``: the same seed
replays the same kills, hangs and stalls, so a CI failure reproduces
locally.  Faults are installed in the parent and inherited by forked
workers (see :mod:`repro.resilience.supervisor`).
"""

from __future__ import annotations

import json
import logging
import os
import random
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults

logger = logging.getLogger("repro.resilience")


def build_schedule(seed: int, cases: Sequence) -> List[faults.FaultSpec]:
    """The seeded fault schedule for one sweep.

    Deterministically picks victim cases for: a *poisoned* kill (fires on
    every attempt, so the case must be quarantined), a *transient* kill
    and a *transient* hang (first attempt only, so the retry must
    succeed), plus a one-shot journal disk-full and probabilistic slow
    I/O on cache claims.  With fewer than three cases the schedule
    degrades gracefully (victims overlap is avoided first, coverage
    second).
    """
    labels = [spec.label() for spec in cases]
    rng = random.Random(seed)
    picks = rng.sample(range(len(labels)), k=min(3, len(labels)))
    schedule: List[faults.FaultSpec] = []
    if len(picks) > 0:  # poisoned: kills the worker on every attempt
        schedule.append(
            faults.FaultSpec(site=faults.WORKER_KILL, match=labels[picks[0]], seed=seed)
        )
    if len(picks) > 1:  # transient: kills only the first attempt
        schedule.append(
            faults.FaultSpec(
                site=faults.WORKER_KILL, match=f"{labels[picks[1]]}#0", seed=seed
            )
        )
    if len(picks) > 2:  # transient hang on the first attempt
        schedule.append(
            faults.FaultSpec(
                site=faults.WORKER_HANG,
                match=f"{labels[picks[2]]}#0",
                seed=seed,
                payload={"hang_s": 600.0},
            )
        )
    schedule.append(
        faults.FaultSpec(site=faults.DISK_FULL, match="journal:", seed=seed, max_fires=1)
    )
    schedule.append(
        faults.FaultSpec(
            site=faults.SLOW_IO,
            match="claim:",
            probability=0.5,
            seed=seed,
            payload={"seconds": 0.01},
        )
    )
    return schedule


@dataclass
class ChaosReport:
    """What one chaos run did and whether the invariants held."""

    seed: int
    cases: int
    survived: int
    quarantined: int
    lost: int
    untyped_failures: List[str] = field(default_factory=list)
    mismatched: List[str] = field(default_factory=list)
    fired: List[Tuple[str, str]] = field(default_factory=list)
    schedule: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.lost or self.untyped_failures or self.mismatched)

    def as_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "survived": self.survived,
            "quarantined": self.quarantined,
            "lost": self.lost,
            "untyped_failures": list(self.untyped_failures),
            "mismatched": list(self.mismatched),
            "fired": [list(pair) for pair in self.fired],
            "schedule": list(self.schedule),
            "ok": self.ok,
        }

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"chaos seed={self.seed}: {self.cases} cases, "
            f"{self.survived} survived byte-identical, "
            f"{self.quarantined} quarantined (typed), {self.lost} lost, "
            f"{len(self.fired)} fault firings — {verdict}"
        )


@contextmanager
def _scratch_cache(tag: str):
    """Point the experiment cache at a fresh scratch dir for one run."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix=f"repro-chaos-{tag}-") as scratch:
        os.environ["REPRO_CACHE_DIR"] = scratch
        try:
            yield scratch
        finally:
            if previous is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous


def run_chaos_sweep(
    cases: Sequence,
    context,
    *,
    seed: int = 0,
    jobs: int = 2,
    hang_timeout_s: float = 2.0,
) -> ChaosReport:
    """Run ``cases`` clean, then under the seeded schedule; check invariants.

    Both runs use their own scratch cache directory, so neither the
    baseline nor the real experiment cache can mask a chaos-run bug (or
    be polluted by one).  The chaos run uses the supervised pool with a
    short hang timeout so injected hangs resolve quickly.
    """
    from repro.experiments.parallel import run_cases
    from repro.experiments.runner import clear_failures

    cases = list(cases)
    with _scratch_cache("baseline"):
        clear_failures()
        baseline = run_cases(cases, context, jobs=0, record_failures=False)

    schedule = build_schedule(seed, cases)
    previous_timeout = os.environ.get("REPRO_HANG_TIMEOUT_S")
    os.environ["REPRO_HANG_TIMEOUT_S"] = str(hang_timeout_s)
    try:
        with _scratch_cache("run"), faults.injected(*schedule) as registry:
            clear_failures()
            chaotic = run_cases(cases, context, jobs=max(2, jobs))
            fired = list(registry.fired)
    finally:
        if previous_timeout is None:
            os.environ.pop("REPRO_HANG_TIMEOUT_S", None)
        else:
            os.environ["REPRO_HANG_TIMEOUT_S"] = previous_timeout
        clear_failures()

    report = ChaosReport(
        seed=seed,
        cases=len(cases),
        survived=0,
        quarantined=0,
        lost=0,
        fired=fired,
        schedule=[f"{s.site} match={s.match!r}" for s in schedule],
    )
    for spec, base, result in zip(cases, baseline, chaotic):
        label = spec.label()
        if result is None:
            report.lost += 1
            report.mismatched.append(f"{label}: no result recorded")
            continue
        metrics, failure = result
        if metrics is None and failure is None:
            report.lost += 1
            report.mismatched.append(f"{label}: resolved to neither metrics nor failure")
        elif failure is not None:
            report.quarantined += 1
            if not getattr(failure, "error_type", None):
                report.untyped_failures.append(label)
        else:
            report.survived += 1
            base_metrics = base[0] if base else None
            if base_metrics is None:
                report.mismatched.append(f"{label}: survived chaos but failed clean run")
            elif json.dumps(metrics, sort_keys=True) != json.dumps(
                base_metrics, sort_keys=True
            ):
                report.mismatched.append(f"{label}: metrics differ from clean run")
    logger.info(report.summary())
    return report
