"""Supervised worker pool: crash *attribution*, hang detection, rebuild.

``concurrent.futures.ProcessPoolExecutor`` treats one dead worker as a
broken pool: every outstanding future fails with the same
``BrokenProcessPool``, so the sweep can't tell which case killed the
process, can't retry the innocent bystanders cheaply, and can't isolate
the culprit.  :class:`SupervisedPool` replaces it for sweeps with raw
``multiprocessing`` workers plus a per-worker **heartbeat file** — the
supervisor's source of truth for what each worker was doing when it
died:

* a worker writes ``{pid, state, index, label, beat_at}`` to its
  heartbeat before starting a case and after finishing it, so a dead
  process is attributed to the exact case it held;
* **crash** (process exits on its own) and **hang** (process alive but
  its case has outrun ``hang_timeout_s``; the supervisor kills it) are
  detected separately and produce separately-typed failures;
* the pool **rebuilds** — a replacement worker is spawned immediately —
  and the victim case is requeued, unless it has now destroyed
  ``max_case_crashes`` workers, in which case it is **poisoned**:
  quarantined with a typed :class:`CaseFailure` instead of being
  retried forever;
* workers are forked, so fault specs installed in the parent
  (:mod:`repro.faults`) are active in the children — the chaos harness
  depends on this.

Results, metric deltas and failure records flow back exactly as in the
executor path (:func:`repro.experiments.parallel.case_worker_obs`), so
a supervised sweep is byte-identical to a serial one.  Supervision
events land in ``repro_resilience_worker_*`` / ``_pool_rebuilds_total``
/ ``_poisoned_cases_total`` metrics.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import queue as queue_mod
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import faults

logger = logging.getLogger("repro.resilience")

#: Exit code the WORKER_KILL fault uses, so tests can tell an injected
#: death from a genuine one.
KILL_EXIT_CODE = 11


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        logger.warning("ignoring non-numeric %s=%r", name, raw)
        return default


def hang_timeout_from_env() -> float:
    """``REPRO_HANG_TIMEOUT_S``: seconds a case may run before its worker
    is presumed hung and killed (default 300)."""
    return _env_float("REPRO_HANG_TIMEOUT_S", 300.0)


def max_case_crashes_from_env() -> int:
    """``REPRO_MAX_CASE_CRASHES``: workers one case may destroy before it
    is poisoned (default 2)."""
    return max(1, int(_env_float("REPRO_MAX_CASE_CRASHES", 2)))


def _observe(counter: str, help_text: str, **labels) -> None:
    from repro.obs import registry as obs_registry

    obs_registry().counter(
        f"repro_resilience_{counter}", help_text, tuple(sorted(labels))
    ).labels(**labels).inc()


# -- worker side -----------------------------------------------------------------


def _write_heartbeat(path: Path, state: str, index: Optional[int], label: str) -> None:
    """Atomically publish this worker's current assignment."""
    payload = {
        "pid": os.getpid(),
        "state": state,  # "idle" | "running"
        "index": index,
        "label": label,
        "beat_at": time.time(),
    }
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)


def _read_heartbeat(path: Path) -> Optional[Dict]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def _worker_main(worker_id: int, heartbeat_path: str, task_q, result_q, context) -> None:
    """Supervised worker loop: heartbeat, fault hooks, one case at a time.

    The heartbeat is written (and fsynced) *before* the fault hooks run,
    so even a worker that dies instantly leaves an attributable record.
    """
    from repro.experiments.parallel import case_worker_obs

    hb = Path(heartbeat_path)
    _write_heartbeat(hb, "idle", None, "")
    while True:
        task = task_q.get()
        if task is None:
            return
        index, spec, attempt = task
        label = spec.label()
        _write_heartbeat(hb, "running", index, label)
        hook_key = f"{label}#{attempt}"
        if faults.should_fire(faults.WORKER_KILL, hook_key) is not None:
            os._exit(KILL_EXIT_CODE)
        hang = faults.should_fire(faults.WORKER_HANG, hook_key)
        if hang is not None:
            # Simulate a stuck worker; the supervisor's hang watchdog is
            # expected to kill this process long before the sleep ends.
            time.sleep(float(hang.payload.get("hang_s", 3600.0)))
        result, obs_delta = case_worker_obs(spec, context)
        result_q.put((worker_id, index, result, obs_delta))
        _write_heartbeat(hb, "idle", None, "")


# -- supervisor side ---------------------------------------------------------------


class _Worker:
    """Supervisor-side handle for one worker process."""

    def __init__(self, worker_id: int, proc, heartbeat_path: Path):
        self.worker_id = worker_id
        self.proc = proc
        self.heartbeat_path = heartbeat_path

    def heartbeat(self) -> Optional[Dict]:
        return _read_heartbeat(self.heartbeat_path)


class SupervisedPool:
    """Run cases on supervised forked workers; see the module docstring.

    Parameters mirror the env knobs so tests can pin them directly:
    ``hang_timeout_s`` (``REPRO_HANG_TIMEOUT_S``) and
    ``max_case_crashes`` (``REPRO_MAX_CASE_CRASHES``).
    """

    def __init__(
        self,
        workers: int,
        context,
        *,
        heartbeat_dir: Optional[Path] = None,
        hang_timeout_s: Optional[float] = None,
        max_case_crashes: Optional[int] = None,
        poll_s: float = 0.05,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.context = context
        self.worker_count = workers
        self.hang_timeout_s = (
            hang_timeout_s if hang_timeout_s is not None else hang_timeout_from_env()
        )
        self.max_case_crashes = (
            max_case_crashes
            if max_case_crashes is not None
            else max_case_crashes_from_env()
        )
        self.poll_s = poll_s
        self._mp = multiprocessing.get_context("fork")
        self._tempdir = None
        if heartbeat_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-heartbeat-")
            heartbeat_dir = Path(self._tempdir.name)
        heartbeat_dir.mkdir(parents=True, exist_ok=True)
        self.heartbeat_dir = heartbeat_dir
        self._next_worker_id = 0
        self.busy_seconds = 0.0
        self.rebuilds = 0

    # -- lifecycle --------------------------------------------------------------

    def _spawn_worker(self, task_q, result_q) -> _Worker:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        hb_path = self.heartbeat_dir / f"worker-{worker_id}.json"
        proc = self._mp.Process(
            target=_worker_main,
            args=(worker_id, str(hb_path), task_q, result_q, self.context),
            daemon=True,
        )
        proc.start()
        return _Worker(worker_id, proc, hb_path)

    # -- execution --------------------------------------------------------------

    def run(
        self,
        cases: Sequence,
        on_result: Optional[Callable[[int, Tuple], None]] = None,
        record_failures: bool = True,
    ) -> List[Tuple[Optional[Dict], Optional[object]]]:
        """Run every case; ``(metrics, failure)`` results in input order.

        ``on_result(index, (metrics, failure))`` fires as each case
        resolves (the sweep journal hooks in here).  Failure records are
        re-recorded in the parent unless ``record_failures`` is False —
        identical contracts to the executor path.
        """
        from repro.experiments.parallel import _busy_seconds
        from repro.experiments.runner import CaseFailure, record_failure
        from repro.obs import registry as obs_registry

        cases = list(cases)
        results: List[Optional[Tuple]] = [None] * len(cases)
        if not cases:
            return []

        task_q = self._mp.Queue()
        result_q = self._mp.Queue()
        for index, spec in enumerate(cases):
            task_q.put((index, spec, 0))

        workers = [
            self._spawn_worker(task_q, result_q)
            for _ in range(min(self.worker_count, len(cases)))
        ]
        unresolved = set(range(len(cases)))
        crash_counts: Dict[int, int] = {}
        attempts: Dict[int, int] = {index: 0 for index in unresolved}
        idle_polls = 0

        def resolve(index: int, metrics, failure) -> None:
            if index not in unresolved:
                return  # late duplicate (reconciliation re-ran a case)
            unresolved.discard(index)
            if failure is not None and record_failures:
                record_failure(failure)
            results[index] = (metrics, failure)
            if on_result is not None:
                on_result(index, (metrics, failure))

        def retry_or_poison(index: int, kind: str, detail: str) -> None:
            """Requeue a victim case, or poison it past the crash budget."""
            crash_counts[index] = crash_counts.get(index, 0) + 1
            spec = cases[index]
            if crash_counts[index] >= self.max_case_crashes:
                _observe(
                    "poisoned_cases_total",
                    "Cases quarantined after destroying too many workers",
                    kind=kind,
                )
                logger.warning(
                    "poisoned case %s after %d %s(s): quarantining",
                    spec.label(), crash_counts[index], kind,
                )
                resolve(
                    index,
                    None,
                    CaseFailure(
                        scene=spec.scene,
                        policy=spec.policy,
                        error_type="WorkerCrash" if kind == "crash" else "WorkerHang",
                        message=(
                            f"poisoned: case {spec.label()} {kind}ed "
                            f"{crash_counts[index]} worker(s) ({detail})"
                        ),
                    ),
                )
            else:
                attempts[index] += 1
                logger.warning(
                    "worker %s on case %s; requeueing (attempt %d)",
                    kind, spec.label(), attempts[index] + 1,
                )
                task_q.put((index, spec, attempts[index]))

        try:
            while unresolved:
                progressed = self._drain_results(
                    result_q, resolve, obs_registry, _busy_seconds
                )
                progressed |= self._reap_crashes(workers, unresolved, retry_or_poison, task_q, result_q)
                progressed |= self._kill_hung(workers, unresolved, retry_or_poison, task_q, result_q)
                if progressed:
                    idle_polls = 0
                    continue
                idle_polls += 1
                # Reconciliation: every worker idle, no results arriving,
                # yet cases remain unresolved — a task was lost in the
                # narrow window between queue claim and heartbeat write
                # (e.g. an external SIGKILL).  Cases are idempotent and
                # flock-claimed, so requeueing is always safe.
                if idle_polls >= 3 and self._all_idle(workers, unresolved):
                    for index in sorted(unresolved):
                        if attempts[index] < self.max_case_crashes + 1:
                            attempts[index] += 1
                            logger.warning(
                                "reconciling lost case %s (attempt %d)",
                                cases[index].label(), attempts[index] + 1,
                            )
                            task_q.put((index, cases[index], attempts[index]))
                        else:
                            spec = cases[index]
                            resolve(
                                index,
                                None,
                                CaseFailure(
                                    scene=spec.scene,
                                    policy=spec.policy,
                                    error_type="WorkerCrash",
                                    message=(
                                        f"case {spec.label()} lost repeatedly "
                                        "despite reconciliation; giving up"
                                    ),
                                ),
                            )
                    idle_polls = 0
        finally:
            self._shutdown(workers, task_q)
        return results  # type: ignore[return-value]

    # -- supervision passes -----------------------------------------------------

    def _drain_results(self, result_q, resolve, obs_registry, busy_fn) -> bool:
        progressed = False
        while True:
            try:
                worker_id, index, (metrics, failure), obs_delta = result_q.get(
                    timeout=0 if progressed else self.poll_s
                )
            except queue_mod.Empty:
                return progressed
            obs_registry().merge_snapshot(obs_delta)
            self.busy_seconds += busy_fn(obs_delta)
            resolve(index, metrics, failure)
            progressed = True

    def _reap_crashes(self, workers, unresolved, retry_or_poison, task_q, result_q) -> bool:
        progressed = False
        for slot, worker in enumerate(workers):
            if worker.proc.is_alive():
                continue
            beat = worker.heartbeat()
            exitcode = worker.proc.exitcode
            _observe(
                "worker_crashes_total",
                "Worker processes that died while supervised",
                exitcode=str(exitcode),
            )
            if beat and beat.get("state") == "running" and beat.get("index") in unresolved:
                retry_or_poison(
                    beat["index"], "crash",
                    f"worker exited with code {exitcode}",
                )
            else:
                logger.warning(
                    "worker %d died idle (exit %s); rebuilding pool",
                    worker.worker_id, exitcode,
                )
            self._remove_heartbeat(worker)
            workers[slot] = self._spawn_worker(task_q, result_q)
            self.rebuilds += 1
            _observe("pool_rebuilds_total", "Replacement workers spawned")
            progressed = True
        return progressed

    def _kill_hung(self, workers, unresolved, retry_or_poison, task_q, result_q) -> bool:
        progressed = False
        now = time.time()
        for slot, worker in enumerate(workers):
            if not worker.proc.is_alive():
                continue
            beat = worker.heartbeat()
            if (
                not beat
                or beat.get("state") != "running"
                or beat.get("index") not in unresolved
            ):
                continue
            if now - float(beat.get("beat_at", now)) <= self.hang_timeout_s:
                continue
            _observe(
                "worker_hangs_total",
                "Workers killed after exceeding the hang timeout",
            )
            logger.warning(
                "worker %d hung on %s (> %.1fs); killing",
                worker.worker_id, beat.get("label"), self.hang_timeout_s,
            )
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
            retry_or_poison(
                beat["index"], "hang",
                f"no progress for {self.hang_timeout_s:.1f}s",
            )
            self._remove_heartbeat(worker)
            workers[slot] = self._spawn_worker(task_q, result_q)
            self.rebuilds += 1
            _observe("pool_rebuilds_total", "Replacement workers spawned")
            progressed = True
        return progressed

    def _all_idle(self, workers, unresolved) -> bool:
        for worker in workers:
            if not worker.proc.is_alive():
                return False
            beat = worker.heartbeat()
            if beat is None:
                return False
            if beat.get("state") == "running" and beat.get("index") in unresolved:
                return False
        return True

    # -- teardown ---------------------------------------------------------------

    def _remove_heartbeat(self, worker) -> None:
        try:
            worker.heartbeat_path.unlink()
        except OSError:
            pass

    def _shutdown(self, workers, task_q) -> None:
        for _ in workers:
            try:
                task_q.put_nowait(None)
            except queue_mod.Full:  # pragma: no cover - unbounded queue
                break
        for worker in workers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=2.0)
        task_q.close()
        task_q.cancel_join_thread()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None
