"""Crash-safe sweep checkpoint/resume journal.

A multi-case sweep killed mid-flight (OOM killer, preempted CI runner,
ctrl-C) used to lose its bookkeeping: completed cases survive in the
disk cache, but the restarted sweep re-enumerates everything, re-reads
every cache entry, and recomputes any quarantined-failure cell from
scratch (failures are never cached).  The :class:`SweepJournal` fixes
both: each completed case — success *or* typed failure — is appended to
a progress journal next to the experiment cache, and a restarted sweep
replays the journal first, touching only the cases that never finished.

Design points:

* **Identity is the cache key.**  A sweep's journal id is the hash of
  its sorted per-case cache keys (:func:`repro.experiments.runner.case_key_for`),
  and each entry is keyed by a case's cache key — so any input change
  that would invalidate the cache (config, scene scale, code version)
  silently starts a fresh journal instead of resuming stale progress.
* **Append-only JSONL with per-line checksums.**  A crash mid-append
  leaves at most one torn trailing line; :meth:`load` drops torn or
  checksum-failing lines and keeps everything before them.  No rewrite,
  no rename, no window where progress is lost.
* **Failures are journaled too.**  A quarantined case resumes as the
  same :class:`~repro.experiments.runner.CaseFailure` (re-recorded in
  the parent), so resume reproduces an uninterrupted sweep's report
  byte-for-byte without re-running the failing simulation.
* **A full-disk write degrades, never aborts.**  An ``OSError`` from an
  append (see the ``DISK_FULL`` fault site) disables the journal for
  the rest of the sweep and logs once; the sweep itself continues on
  the cache alone.

A successfully completed sweep deletes its journal
(:meth:`complete`) — the cache now covers everything it recorded.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import faults

logger = logging.getLogger("repro.resilience")

JOURNAL_VERSION = "1"


def _observe_append(status: str) -> None:
    from repro.obs import registry as obs_registry

    obs_registry().counter(
        "repro_resilience_journal_appends_total",
        "Sweep-journal entries appended, by case status",
        ("status",),
    ).labels(status=status).inc()


def _observe_resumed(count: int) -> None:
    if not count:
        return
    from repro.obs import registry as obs_registry

    obs_registry().counter(
        "repro_resilience_journal_resumed_total",
        "Cases restored from a sweep journal instead of re-resolved",
    ).labels().inc(count)


def _line_checksum(payload: Dict) -> str:
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def journal_enabled() -> bool:
    """Journalling is on unless ``REPRO_SWEEP_JOURNAL=0``."""
    return os.environ.get("REPRO_SWEEP_JOURNAL", "1") != "0"


@dataclass
class SweepJournal:
    """Progress journal for one specific sweep (one set of case keys)."""

    path: Path
    sweep_id: str
    _disabled: bool = False
    _handle: Optional[object] = field(default=None, repr=False)

    # -- construction -----------------------------------------------------------

    @classmethod
    def for_cases(cls, cases, context) -> Optional["SweepJournal"]:
        """The journal for this exact sweep, or ``None`` when journalling
        doesn't apply (disabled by env, or the context has no disk cache
        for completed cases to survive in)."""
        if not journal_enabled():
            return None
        if not getattr(context, "use_disk_cache", False):
            return None
        from repro.experiments.runner import cache_dir, case_key_for

        keys = sorted(
            case_key_for(
                spec.scene, spec.policy, context, spec.vtq, spec.gpu_overrides
            )
            for spec in cases
        )
        if not keys:
            return None
        sweep_id = hashlib.sha256(
            json.dumps([JOURNAL_VERSION] + keys).encode()
        ).hexdigest()[:24]
        path = cache_dir() / "journal" / f"{sweep_id}.jsonl"
        return cls(path=path, sweep_id=sweep_id)

    # -- reading ----------------------------------------------------------------

    def load(self) -> Dict[str, Tuple[Optional[Dict], Optional[Dict]]]:
        """Previously journaled progress: ``{key: (metrics, failure)}``.

        Tolerates a torn or corrupted tail (the crash that motivated the
        resume): bad lines are dropped, valid earlier lines are kept.
        """
        if not self.path.exists():
            return {}
        progress: Dict[str, Tuple[Optional[Dict], Optional[Dict]]] = {}
        dropped = 0
        try:
            raw_lines = self.path.read_text().splitlines()
        except OSError as exc:
            logger.warning("sweep journal %s unreadable: %s", self.path.name, exc)
            return {}
        for raw in raw_lines:
            if not raw.strip():
                continue
            try:
                entry = json.loads(raw)
                payload = {k: entry[k] for k in ("v", "key", "status", "metrics", "failure")}
            except (json.JSONDecodeError, KeyError, TypeError):
                dropped += 1
                continue
            if entry.get("sum") != _line_checksum(payload) or payload["v"] != JOURNAL_VERSION:
                dropped += 1
                continue
            progress[payload["key"]] = (payload["metrics"], payload["failure"])
        if dropped:
            logger.warning(
                "sweep journal %s: dropped %d torn/corrupt line(s)",
                self.path.name, dropped,
            )
        _observe_resumed(len(progress))
        return progress

    # -- writing ----------------------------------------------------------------

    def record(
        self,
        key: str,
        metrics: Optional[Dict],
        failure: Optional[Dict],
    ) -> None:
        """Append one completed case (metrics or serialized failure).

        An OSError (disk full, journal dir deleted mid-run) disables the
        journal for the rest of the sweep — the sweep must never die for
        its own bookkeeping.
        """
        if self._disabled:
            return
        status = "done" if failure is None else "failed"
        payload = {
            "v": JOURNAL_VERSION,
            "key": key,
            "status": status,
            "metrics": metrics,
            "failure": failure,
        }
        line = json.dumps({**payload, "sum": _line_checksum(payload)})
        try:
            faults.maybe_slow_io(f"journal:{self.sweep_id}")
            faults.maybe_disk_full(f"journal:{self.sweep_id}")
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a")
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            logger.warning(
                "sweep journal %s disabled after write failure: %s",
                self.path.name, exc,
            )
            self._disabled = True
            self.close()
            return
        _observe_append(status)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close after ENOSPC
                pass
            self._handle = None

    def complete(self) -> None:
        """The sweep finished: drop the journal (the cache covers it)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass


def serialize_failure(failure) -> Dict:
    """A :class:`CaseFailure` as the JSON dict the journal stores."""
    return {
        "scene": failure.scene,
        "policy": failure.policy,
        "error_type": failure.error_type,
        "message": failure.message,
        "partial": dict(failure.partial),
    }


def deserialize_failure(data: Dict):
    """The journal dict back into a :class:`CaseFailure`."""
    from repro.experiments.runner import CaseFailure

    return CaseFailure(
        scene=data["scene"],
        policy=data["policy"],
        error_type=data["error_type"],
        message=data["message"],
        partial=dict(data.get("partial") or {}),
    )
