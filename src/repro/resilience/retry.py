"""Unified retry/backoff policy for everything that talks to flaky things.

Before this module each subsystem hand-rolled its own recovery: the
scheduler had a blind ``for attempt in range(retries + 1)`` loop, the
sync client had one socket attempt and a prayer, and the flock claims
blocked forever.  :class:`RetryPolicy` replaces all of them with one
declarative object:

* **exponential backoff with decorrelated jitter** — each delay is drawn
  uniformly from ``[base, 3 * previous]`` and capped at ``max_delay_s``
  (the AWS "decorrelated jitter" scheme), so synchronized retry storms
  cannot form;
* **deadline awareness** — a policy carrying ``deadline_s`` never sleeps
  into its deadline: when the next backoff would cross it, the last
  error is raised immediately.  :meth:`RetryPolicy.for_budget` tightens
  a policy to a :class:`~repro.gpusim.budget.CaseBudget`'s wall
  allowance, so retries respect the same limits the work itself does;
* **hint awareness** — an exception carrying ``retry_after_s`` (e.g. an
  :class:`~repro.errors.AdmissionRejected` with a server backoff hint)
  stretches the next delay to at least that long;
* **sync and async** — :meth:`call` sleeps with ``time.sleep``,
  :meth:`acall` with ``asyncio.sleep``, same schedule either way.

Every attempt outcome lands in the ``repro_resilience_retry_*`` metrics
(labelled by ``component``), so an operator can see who is retrying and
why.  ``seed`` pins the jitter stream for deterministic tests.
"""

from __future__ import annotations

import logging
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterator, Optional, Tuple, Union

logger = logging.getLogger("repro.resilience")


def _observe(component: str, outcome: str) -> None:
    from repro.obs import registry as obs_registry

    obs_registry().counter(
        "repro_resilience_retry_attempts_total",
        "Retry-policy attempt outcomes, by component",
        ("component", "outcome"),
    ).labels(component=component, outcome=outcome).inc()


def _observe_backoff(component: str, seconds: float) -> None:
    from repro.obs import registry as obs_registry

    obs_registry().counter(
        "repro_resilience_retry_backoff_seconds_total",
        "Seconds spent sleeping between retry attempts, by component",
        ("component",),
    ).labels(component=component).inc(seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait in between.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first (1 = no retries).
    base_delay_s / max_delay_s:
        Bounds of the decorrelated-jitter backoff schedule.
    deadline_s:
        Wall-clock budget from the *first* attempt; a backoff that would
        cross it raises the pending error instead of sleeping.  ``None``
        means unbounded.
    seed:
        Pins the jitter RNG (tests); ``None`` draws fresh randomness.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    deadline_s: Optional[float] = None
    seed: Optional[int] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")

    # -- derivation -------------------------------------------------------------

    def with_deadline(self, deadline_s: Optional[float]) -> "RetryPolicy":
        """This policy bounded by ``deadline_s`` (``None`` clears it)."""
        return replace(self, deadline_s=deadline_s)

    def for_budget(self, budget) -> "RetryPolicy":
        """This policy tightened to a :class:`CaseBudget`'s wall allowance.

        The tighter of the existing deadline and the budget's
        ``wall_seconds`` wins; a budget-less call returns the policy
        unchanged.
        """
        wall = getattr(budget, "wall_seconds", None) if budget else None
        if wall is None:
            return self
        if self.deadline_s is not None:
            wall = min(wall, self.deadline_s)
        return replace(self, deadline_s=wall)

    # -- schedule ---------------------------------------------------------------

    def delays(self) -> Iterator[float]:
        """The (unbounded) backoff schedule: decorrelated jitter."""
        rng = random.Random(self.seed)
        prev = self.base_delay_s
        while True:
            prev = min(self.max_delay_s, rng.uniform(self.base_delay_s, prev * 3))
            yield prev

    # -- execution --------------------------------------------------------------

    def call(
        self,
        fn: Callable,
        *,
        component: str = "generic",
        describe: str = "",
        classify: Optional[Callable[[BaseException], bool]] = None,
        retry_on: Tuple[type, ...] = (OSError,),
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        """Run ``fn()`` under this policy; returns its result.

        ``classify(exc) -> bool`` decides retryability (default:
        ``isinstance(exc, retry_on)``).  A non-retryable error, the last
        attempt's error, and an error whose backoff would cross the
        deadline all propagate to the caller unchanged.
        """
        start = clock()
        schedule = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            try:
                result = fn()
            except Exception as exc:
                delay = self._next_delay(
                    exc, attempt, schedule, start, clock(), classify, retry_on,
                    component, describe,
                )
                if delay is None:
                    raise
                sleep(delay)
            else:
                _observe(component, "ok" if attempt == 1 else "recovered")
                return result
        raise AssertionError("unreachable")  # pragma: no cover

    async def acall(
        self,
        fn: Callable,
        *,
        component: str = "generic",
        describe: str = "",
        classify: Optional[Callable[[BaseException], bool]] = None,
        retry_on: Tuple[type, ...] = (Exception,),
        clock: Callable[[], float] = time.monotonic,
    ):
        """Async twin of :meth:`call`: awaits ``fn()``, sleeps on the loop."""
        import asyncio

        start = clock()
        schedule = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            try:
                result = await fn()
            except Exception as exc:
                delay = self._next_delay(
                    exc, attempt, schedule, start, clock(), classify, retry_on,
                    component, describe,
                )
                if delay is None:
                    raise
                await asyncio.sleep(delay)
            else:
                _observe(component, "ok" if attempt == 1 else "recovered")
                return result
        raise AssertionError("unreachable")  # pragma: no cover

    def _next_delay(
        self, exc, attempt, schedule, start, now, classify, retry_on,
        component, describe,
    ) -> Optional[float]:
        """The backoff before the next attempt, or ``None`` to give up."""
        retryable = (
            classify(exc) if classify is not None else isinstance(exc, retry_on)
        )
        if not retryable:
            _observe(component, "fatal")
            return None
        if attempt >= self.max_attempts:
            _observe(component, "exhausted")
            return None
        delay = next(schedule)
        hint = getattr(exc, "retry_after_s", None)
        if hint:
            delay = max(delay, float(hint))
        if self.deadline_s is not None and (now - start) + delay >= self.deadline_s:
            _observe(component, "deadline")
            return None
        _observe(component, "retry")
        _observe_backoff(component, delay)
        logger.debug(
            "%s%s attempt %d/%d failed (%s); retrying in %.3fs",
            component, f" {describe}" if describe else "", attempt,
            self.max_attempts, exc, delay,
        )
        return delay


#: Defaults shared by the idempotent service-client verbs.
CLIENT_POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.05, max_delay_s=1.0)

#: Defaults for cross-process flock contention (claims are short-lived,
#: so the schedule is tight but patient).
FLOCK_POLICY = RetryPolicy(
    max_attempts=24, base_delay_s=0.01, max_delay_s=0.25, deadline_s=30.0
)


@contextmanager
def flock_claim(
    path: Union[str, Path],
    policy: Optional[RetryPolicy] = None,
    describe: str = "",
):
    """Cross-process mutex on ``path`` with retry-managed contention.

    Acquisition first spins non-blocking attempts under ``policy``
    (default :data:`FLOCK_POLICY`) so contention is observable in the
    retry metrics and bounded by the policy's deadline; a claim still
    contended past the policy's patience degrades to one final blocking
    wait — correctness (single computation per key) beats latency.  On
    platforms without ``fcntl`` the claim is a no-op, exactly like the
    pre-policy behaviour.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX fallback
        yield
        return
    from repro import faults

    policy = policy if policy is not None else FLOCK_POLICY
    faults.maybe_slow_io(f"claim:{describe or Path(path).name}")
    with open(path, "w") as handle:

        def grab():
            fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)

        try:
            policy.call(
                grab,
                component="flock",
                describe=describe,
                retry_on=(BlockingIOError, PermissionError),
            )
        except (BlockingIOError, PermissionError):
            logger.warning(
                "flock claim %s contended past the retry policy; blocking",
                describe or path,
            )
            fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)
