"""Per-scene circuit breakers for the scheduler.

A scene whose cases keep failing (bad geometry on disk, a poisoned BVH
blob, a replay trace recorded at the wrong config) will fail *every* job
submitted for it, and each failure costs a full dispatch: pool slot,
cache claim, possibly a crash-retry cycle.  A circuit breaker turns that
repeated cost into a fast typed rejection.

Standard three-state machine:

* **closed** — normal operation; consecutive failures are counted, a
  success resets the count.
* **open** — ``failure_threshold`` consecutive failures trip the
  breaker; :meth:`allow` raises :class:`~repro.errors.CircuitOpen`
  (carrying the scene name and a ``retry_after_s`` hint) until
  ``cooldown_s`` elapses.
* **half-open** — after the cooldown one probe is admitted; its success
  closes the circuit, its failure re-opens it for a fresh cooldown.

The scheduler consults breakers at two points with different helpers:
``check()`` at admission (non-consuming — it never claims the half-open
probe slot, so an admission check cannot starve the dispatch path of its
probe) and ``allow()`` at dispatch (consuming — this is the probe).
State transitions and rejections land in the
``repro_resilience_breaker_*`` metrics.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Dict, Optional

from repro.errors import CircuitOpen

logger = logging.getLogger("repro.resilience")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


def _observe_transition(name: str, subject: str, to: str) -> None:
    from repro.obs import registry as obs_registry

    obs_registry().counter(
        "repro_resilience_breaker_transitions_total",
        "Circuit-breaker state transitions, by subject and target state",
        ("scene", "subject", "to"),
    ).labels(scene=name, subject=subject, to=to).inc()


def _observe_rejection(name: str, subject: str) -> None:
    from repro.obs import registry as obs_registry

    obs_registry().counter(
        "repro_resilience_breaker_rejections_total",
        "Work rejected because a circuit breaker was open",
        ("scene", "subject"),
    ).labels(scene=name, subject=subject).inc()


class CircuitBreaker:
    """One scene's breaker.  Not thread-safe; the scheduler owns it from
    a single event loop."""

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        subject: str = "scene",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.name = name
        # What kind of thing this breaker protects ("scene" by default;
        # the fleet layer uses "node").  Flows into metric labels and
        # the CircuitOpen message so node trips don't masquerade as
        # scene trips.
        self.subject = subject
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_out = False

    # -- inspection -------------------------------------------------------------

    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    def retry_after_s(self) -> Optional[float]:
        """Seconds until the cooldown admits a probe (None when not open)."""
        if self._state != OPEN or self._opened_at is None:
            return None
        return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    def snapshot(self) -> Dict:
        """State for health endpoints: name, state, failure count."""
        return {
            "scene": self.name,
            "subject": self.subject,
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "retry_after_s": self.retry_after_s(),
        }

    # -- gating -----------------------------------------------------------------

    def check(self) -> None:
        """Admission-time gate: raise :class:`CircuitOpen` while fully
        open.  Never consumes the half-open probe slot."""
        self._maybe_half_open()
        if self._state == OPEN:
            _observe_rejection(self.name, self.subject)
            raise self._rejection()

    def allow(self) -> None:
        """Dispatch-time gate: raise :class:`CircuitOpen` unless work may
        proceed.  In the half-open state this claims the single probe
        slot; the caller must report the probe's outcome via
        :meth:`record_success` / :meth:`record_failure`."""
        self._maybe_half_open()
        if self._state == CLOSED:
            return
        if self._state == HALF_OPEN and not self._probe_out:
            self._probe_out = True
            return
        _observe_rejection(self.name, self.subject)
        raise self._rejection()

    # -- outcome reporting ------------------------------------------------------

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._probe_out = False
        if self._state != CLOSED:
            self._transition(CLOSED)
            self._opened_at = None

    def release(self) -> None:
        """Return a claimed half-open probe slot without recording an
        outcome (the probe never actually ran, e.g. its job's deadline
        had already expired before dispatch)."""
        self._probe_out = False

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        self._probe_out = False
        if self._state == HALF_OPEN:
            # The probe failed: back to a fresh cooldown.
            self._transition(OPEN)
            self._opened_at = self._clock()
        elif (
            self._state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._transition(OPEN)
            self._opened_at = self._clock()

    # -- internals --------------------------------------------------------------

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._transition(HALF_OPEN)
            self._probe_out = False

    def _transition(self, to: str) -> None:
        logger.info("circuit %s: %s -> %s", self.name, self._state, to)
        self._state = to
        _observe_transition(self.name, self.subject, to)

    def _rejection(self) -> CircuitOpen:
        after = self.retry_after_s()
        # Half-open with the probe already out: suggest a short poll.
        if after is None:
            after = 1.0
        return CircuitOpen(
            f"circuit for {self.subject} {self.name!r} is open after "
            f"{self._consecutive_failures} consecutive failures; "
            f"retry in {after:.1f}s",
            scene=self.name,
            retry_after_s=after,
        )


class BreakerBoard:
    """The scheduler's collection of per-scene breakers, created lazily."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        subject: str = "scene",
    ):
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.subject = subject
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, scene: str) -> CircuitBreaker:
        found = self._breakers.get(scene)
        if found is None:
            found = CircuitBreaker(
                scene,
                failure_threshold=self.failure_threshold,
                cooldown_s=self.cooldown_s,
                clock=self._clock,
                subject=self.subject,
            )
            self._breakers[scene] = found
        return found

    def snapshot(self) -> Dict[str, Dict]:
        """Per-scene state for health/metrics endpoints (non-closed only,
        plus any breaker that has recorded failures)."""
        return {
            name: brk.snapshot()
            for name, brk in sorted(self._breakers.items())
            if brk.state != CLOSED or brk._consecutive_failures > 0
        }
