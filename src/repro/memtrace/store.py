"""Content-addressed on-disk store for recorded memory traces.

Mirrors the hardened experiment result cache (:mod:`repro.experiments.
runner`): traces live under one directory keyed by a hash of everything
that determines the recorded stream (scene, policy, full GPU config,
image dimensions, VTQ overrides), writes are atomic, readers verify the
embedded checksum and a defective file is logged, deleted and
re-recorded — never trusted, never fatal.  Concurrent sweep workers
racing to record the same trace serialize on a per-key ``flock`` claim.

``REPRO_TRACE_DIR`` overrides the store location; otherwise traces sit
next to the experiment cache (``REPRO_CACHE_DIR``-relative when that is
set, repo-relative ``.cache/memtrace`` when not).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Tuple

from repro.errors import TraceError
from repro.memtrace.format import MemTrace, TRACE_VERSION, load_trace, save_trace
from repro.memtrace.recorder import TraceRecorder, trace_budget_bytes

logger = logging.getLogger("repro.memtrace")

_TRACE_DIR = Path(__file__).resolve().parents[3] / ".cache" / "memtrace"


def trace_dir() -> Path:
    """The trace store directory (re-read per call so tests can retarget)."""
    env = os.environ.get("REPRO_TRACE_DIR")
    if env:
        return Path(env)
    cache_env = os.environ.get("REPRO_CACHE_DIR")
    if cache_env:
        return Path(cache_env) / "memtrace"
    return _TRACE_DIR


def trace_key(scene: str, policy: str, setup, vtq) -> str:
    """Content key of the trace one (scene, policy, setup, vtq) produces."""
    payload = {
        "v": TRACE_VERSION,
        "scene": scene,
        "policy": policy,
        "gpu": asdict(setup.gpu),
        "setup": {
            "w": setup.image_width,
            "h": setup.image_height,
            "scale": setup.scene_scale,
            "bounces": setup.max_bounces,
            "spp": setup.samples_per_pixel,
        },
        "vtq": asdict(vtq) if vtq is not None else None,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


def trace_path(key: str) -> Path:
    return trace_dir() / f"{key}.memtrace"


def _observe(event: str) -> None:
    from repro.obs import registry as obs_registry

    obs_registry().counter(
        "repro_memtrace_traces_total",
        "Memory-trace store events (recorded/hit/corrupt/replayed)",
        ("event",),
    ).labels(event=event).inc()


def _observe_bytes(direction: str, nbytes: int) -> None:
    from repro.obs import registry as obs_registry

    obs_registry().counter(
        "repro_memtrace_trace_bytes_total",
        "Trace bytes moved through the store, by direction",
        ("direction",),
    ).labels(direction=direction).inc(nbytes)


@contextmanager
def _trace_claim(key: str):
    """Cross-process mutex for one trace key.

    Contention is managed by the shared retry policy
    (:func:`repro.resilience.flock_claim`); no-op without ``fcntl``.
    """
    from repro.resilience import flock_claim

    directory = trace_dir()
    directory.mkdir(parents=True, exist_ok=True)
    with flock_claim(directory / f"{key}.lock", describe=f"trace:{key}"):
        yield


def store_trace(trace: MemTrace, key: str) -> Path:
    """Write a trace into the store; returns its path."""
    path = trace_path(key)
    nbytes = save_trace(trace, path)
    _observe("recorded")
    _observe_bytes("written", nbytes)
    return path


def try_load_trace(key: str) -> Optional[MemTrace]:
    """Load a stored trace if present and intact; drop defective files."""
    path = trace_path(key)
    if not path.exists():
        return None
    try:
        trace = load_trace(path)
    except TraceError as exc:
        logger.warning("re-recording trace %s: %s", key, exc)
        _observe("corrupt")
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing unlink is fine
            pass
        return None
    _observe("hit")
    _observe_bytes("read", path.stat().st_size)
    return trace


def record_trace(
    scene,
    bvh,
    setup,
    policy: str,
    vtq=None,
    *,
    scene_name: Optional[str] = None,
    allow_partial: bool = False,
    cycle_budget=None,
    sanitize=None,
) -> Tuple[MemTrace, "object"]:
    """Run one live render with recording on; returns ``(trace, result)``.

    The recorder is budgeted by ``REPRO_TRACE_BUDGET_BYTES``; overruns
    raise :class:`repro.errors.TraceBudgetExceeded` unless
    ``allow_partial`` keeps the truncated (replay-refused) stream.
    """
    from repro.tracing import render_scene

    recorder = TraceRecorder(policy, budget_bytes=trace_budget_bytes())
    start = time.perf_counter()
    result = render_scene(
        scene,
        bvh,
        setup,
        policy=policy,
        vtq_config=vtq,
        cycle_budget=cycle_budget,
        sanitize=sanitize,
        trace_recorder=recorder,
    )
    wall = time.perf_counter() - start
    trace = recorder.finish(
        scene_name=scene_name or getattr(scene, "name", "?"),
        setup=setup,
        vtq=vtq,
        bvh=bvh,
        result=result,
        record_wall_s=wall,
        allow_partial=allow_partial,
    )
    return trace, result


def ensure_trace(scene_name: str, policy: str, context, vtq=None) -> MemTrace:
    """Fetch the stored trace for a case, recording it live if absent.

    The live recording run is the "one live sim" a replay-safe sweep
    group pays; every other point in the group replays.  Concurrent
    workers serialize on a per-key claim so the group records once.
    """
    from repro.experiments.runner import scene_and_bvh

    setup = context.setup
    key = trace_key(scene_name, policy, setup, vtq)
    trace = try_load_trace(key)
    if trace is not None:
        return trace
    with _trace_claim(key):
        trace = try_load_trace(key)
        if trace is not None:
            return trace
        scene, bvh = scene_and_bvh(scene_name, setup)
        budget = context.case_budget()
        cycles = budget.max_cycles if budget else None
        trace, _result = record_trace(
            scene,
            bvh,
            setup,
            policy,
            vtq,
            scene_name=scene_name,
            cycle_budget=cycles,
            sanitize=context.sanitize,
        )
        store_trace(trace, key)
    return trace
