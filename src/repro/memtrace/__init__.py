"""repro.memtrace — memory-trace capture & replay for fast cache sweeps.

Record the memory transaction stream of one live render, then re-price
it through freshly configured L1/L2/DRAM models to get full ``SimStats``
for any memory-hierarchy-only configuration without re-running
traversal.  See ``docs/MEMTRACE.md`` for the format, the replay-safety
classification and the store layout.
"""

from repro.memtrace.format import (
    MemTrace,
    SMTrace,
    load_trace,
    save_trace,
    trace_file_info,
)
from repro.memtrace.recorder import (
    RECORDABLE_POLICIES,
    TraceRecorder,
    trace_budget_bytes,
)
from repro.memtrace.replay import replay_trace
from repro.memtrace.safety import (
    CROSS_CONFIG_POLICIES,
    REPLAY_SAFE_GPU_FIELDS,
    classify_axis,
    ensure_replayable,
    normalize_overrides,
    overrides_replay_safe,
    sweep_point_kind,
)
from repro.memtrace.store import (
    ensure_trace,
    record_trace,
    store_trace,
    trace_dir,
    trace_key,
    trace_path,
    try_load_trace,
)

__all__ = [
    "MemTrace",
    "SMTrace",
    "load_trace",
    "save_trace",
    "trace_file_info",
    "RECORDABLE_POLICIES",
    "TraceRecorder",
    "trace_budget_bytes",
    "replay_trace",
    "CROSS_CONFIG_POLICIES",
    "REPLAY_SAFE_GPU_FIELDS",
    "classify_axis",
    "ensure_replayable",
    "normalize_overrides",
    "overrides_replay_safe",
    "sweep_point_kind",
    "ensure_trace",
    "record_trace",
    "store_trace",
    "trace_dir",
    "trace_key",
    "trace_path",
    "try_load_trace",
]
