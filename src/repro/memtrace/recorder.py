"""Capture the per-warp-step memory transaction stream of a live run.

A :class:`TraceRecorder` attaches to every SM's :class:`MemorySystem`
(``mem.recorder``) for one ``render_scene`` call.  The engines call the
emitters below at each point where they touch the memory hierarchy or
make a scheduling decision; recording is purely observational — no
simulated number changes when a recorder is attached (the equivalence
tests pin this by comparing against recorder-free runs).

Two stream shapes (see :mod:`repro.memtrace.format`):

* baseline / prefetch record one op span per warp plus the warp
  genealogy (primary ready cycles, child ready deltas, parent links), so
  replay can re-run the greedy-then-oldest scheduler from scratch;
* vtq records one chronological stream per SM — its phase interleaving
  depends on arrival timing, so the schedule is pinned with explicit
  ``ADVANCE_TO`` idle jumps instead.

Recording is capped by ``REPRO_TRACE_BUDGET_BYTES`` (default 256 MiB of
uncompressed tokens): past the cap the recorder stops storing events
(bounded memory, the render itself is unaffected) and ``finish()``
raises :class:`repro.errors.TraceBudgetExceeded` unless the caller
explicitly opts into saving a partial trace, which replay then refuses.
"""

from __future__ import annotations

import os
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import TraceBudgetExceeded, TraceError
from repro.memtrace.format import (
    MODE_CODES,
    OP_ADVANCE_TO,
    OP_CTA_RESTORE,
    OP_CTA_SAVE,
    OP_PF_NOTE,
    OP_PF_REFRESH,
    OP_RAY_LOAD_FINAL,
    OP_RAY_LOAD_REFILL,
    OP_RAY_LOAD_TS,
    OP_RAY_WRITE,
    OP_STEP,
    OP_TQ_END,
    OP_TQ_FETCH,
    TRACE_VERSION,
    MemTrace,
    SMTrace,
    overlay_from_stats,
)

RECORDABLE_POLICIES = ("baseline", "prefetch", "vtq")

_DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024
_TOKEN_BYTES = 8  # int64 per op token / float64 per literal


def trace_budget_bytes() -> Optional[int]:
    """The recording size cap; ``REPRO_TRACE_BUDGET_BYTES=0`` disables it."""
    raw = os.environ.get("REPRO_TRACE_BUDGET_BYTES")
    if raw is None:
        return _DEFAULT_BUDGET_BYTES
    try:
        value = int(raw)
    except ValueError:
        return _DEFAULT_BUDGET_BYTES
    return None if value <= 0 else value


class _WarpRecord:
    __slots__ = ("ops", "ready", "parent")

    def __init__(self, ready: float, parent: int):
        self.ops: List[int] = []
        self.ready = ready
        self.parent = parent


class _SMRecord:
    __slots__ = ("warps", "ops", "fops", "overlay", "cycles")

    def __init__(self):
        self.warps: List[_WarpRecord] = []
        self.ops: List[int] = []
        self.fops: List[float] = []
        self.overlay: Optional[Dict] = None
        self.cycles = 0.0


class TraceRecorder:
    """Collects one render's memory-transaction stream, SM by SM."""

    def __init__(self, policy: str, budget_bytes: Optional[int] = None):
        if policy not in RECORDABLE_POLICIES:
            raise TraceError(
                f"policy {policy!r} is not recordable; bounce barriers re-sort "
                f"rays mid-run, so only {RECORDABLE_POLICIES} can be traced"
            )
        self.policy = policy
        self.linear = policy == "vtq"
        self._budget_bytes = budget_bytes
        self._budget_tokens = (
            None if budget_bytes is None else max(1, budget_bytes // _TOKEN_BYTES)
        )
        self._tokens = 0
        self.tripped = False
        self._sms: List[_SMRecord] = []
        self._cur: Optional[_SMRecord] = None
        self._wops: Optional[List[int]] = None
        self._active: Optional[int] = None
        self._last_end = 0.0
        self._prefetch_params: Optional[Dict] = None

    # -- SM lifecycle (called from render_scene) -------------------------------

    def begin_sm(self) -> None:
        self._cur = _SMRecord()
        self._sms.append(self._cur)
        self._wops = None
        self._active = None
        self._last_end = 0.0

    def end_sm(self, stats, cycles: float) -> None:
        self._cur.overlay = overlay_from_stats(stats)
        self._cur.cycles = float(cycles)
        self._cur = None

    # -- warp genealogy (called from the baseline/prefetch RT unit) -------------

    def on_submit(self, warp) -> None:
        if self.tripped or self.linear:
            return
        parent = self._active if self._active is not None else -1
        ready = float(warp.ready_cycle)
        if parent >= 0:
            ready -= self._last_end
        warp._memtrace_idx = len(self._cur.warps)
        self._cur.warps.append(_WarpRecord(ready, parent))

    def begin_warp(self, warp) -> None:
        if self.tripped or self.linear:
            return
        self._active = warp._memtrace_idx
        self._wops = self._cur.warps[self._active].ops

    def end_warp(self, cycle: float) -> None:
        if self.tripped or self.linear:
            return
        self._last_end = float(cycle)

    def note_prefetch_params(self, reevaluate_steps: int, min_votes: int) -> None:
        self._prefetch_params = {
            "reevaluate_steps": reevaluate_steps,
            "min_votes": min_votes,
        }

    # -- op emitters ------------------------------------------------------------

    def _out(self) -> List[int]:
        return self._cur.ops if self.linear else self._wops

    def _emit(self, tokens: List[int]) -> None:
        self._tokens += len(tokens)
        if self._budget_tokens is not None and self._tokens > self._budget_tokens:
            self.tripped = True
            return
        self._out().extend(tokens)

    def step(
        self,
        mode,
        lane_lines: Sequence[Sequence[int]],
        tests: int = 0,
        leaf_lanes: int = 0,
    ) -> None:
        """One warp step.  ``tests``/``leaf_lanes`` are the leaf-cost
        operands — nonzero only on gaussian workloads, where replay
        reprices the alpha-evaluation cycles from its own config."""
        if self.tripped:
            return
        tokens = [OP_STEP, MODE_CODES[mode], tests, leaf_lanes, len(lane_lines)]
        for lines in lane_lines:
            tokens.append(len(lines))
            tokens.extend(lines)
        self._emit(tokens)

    def pf_refresh(self, votes: Dict[int, int]) -> None:
        if self.tripped:
            return
        tokens = [OP_PF_REFRESH, len(votes)]
        for treelet in sorted(votes):
            tokens.append(treelet)
            tokens.append(votes[treelet])
        self._emit(tokens)

    def pf_note(self, lines: Sequence[int]) -> None:
        if self.tripped or not lines:
            return
        self._emit([OP_PF_NOTE, len(lines), *lines])

    def ray_write(self, ray_ids: Sequence[int]) -> None:
        if self.tripped:
            return
        self._emit([OP_RAY_WRITE, len(ray_ids), *ray_ids])

    def ray_load_ts(self, ray_ids: Sequence[int]) -> None:
        if self.tripped:
            return
        self._emit([OP_RAY_LOAD_TS, len(ray_ids), *ray_ids])

    def ray_load_final(self, ray_ids: Sequence[int]) -> None:
        if self.tripped:
            return
        self._emit([OP_RAY_LOAD_FINAL, len(ray_ids), *ray_ids])

    def ray_load_refill(self, ray_ids: Sequence[int]) -> None:
        if self.tripped:
            return
        self._emit([OP_RAY_LOAD_REFILL, len(ray_ids), *ray_ids])

    def tq_fetch(self, treelet: int) -> None:
        if self.tripped:
            return
        self._emit([OP_TQ_FETCH, treelet])

    def tq_end(self) -> None:
        if self.tripped:
            return
        self._emit([OP_TQ_END])

    def cta_save(self) -> None:
        if self.tripped:
            return
        self._emit([OP_CTA_SAVE])

    def cta_restore(self) -> None:
        if self.tripped:
            return
        self._emit([OP_CTA_RESTORE])

    def advance_to(self, cycle: float) -> None:
        if self.tripped:
            return
        self._tokens += 2
        if self._budget_tokens is not None and self._tokens > self._budget_tokens:
            self.tripped = True
            return
        self._cur.ops.append(OP_ADVANCE_TO)
        self._cur.fops.append(float(cycle))

    # -- finalization -----------------------------------------------------------

    def finish(
        self,
        *,
        scene_name: str,
        setup,
        vtq,
        bvh,
        result,
        record_wall_s: float,
        allow_partial: bool = False,
    ) -> MemTrace:
        """Package everything recorded into a :class:`MemTrace`.

        Raises :class:`TraceBudgetExceeded` if recording overran its
        size budget, unless ``allow_partial`` marks the truncated stream
        as intentionally kept (replay refuses it; ``trace info`` shows it).
        """
        if self.tripped and not allow_partial:
            raise TraceBudgetExceeded(
                f"memory-trace recording of {scene_name}/{self.policy} exceeded "
                f"its size budget of {self._budget_bytes} bytes; raise "
                f"REPRO_TRACE_BUDGET_BYTES or pass --allow-partial to keep the "
                f"truncated stream",
                limit=self._budget_bytes,
                observed=self._tokens * _TOKEN_BYTES,
            )
        meta = {
            "kind": "memtrace",
            "version": TRACE_VERSION,
            "scene": scene_name,
            "policy": self.policy,
            "gpu": asdict(setup.gpu),
            "setup": {
                "image_width": setup.image_width,
                "image_height": setup.image_height,
                "scene_scale": setup.scene_scale,
                "max_bounces": setup.max_bounces,
                "samples_per_pixel": setup.samples_per_pixel,
            },
            "vtq": asdict(vtq) if vtq is not None else None,
            "prefetch": self._prefetch_params,
            "num_sms": len(self._sms),
            "overlays": [sm.overlay for sm in self._sms],
            "per_sm_cycles": [sm.cycles for sm in self._sms],
            "partial": bool(self.tripped),
            "record_wall_s": float(record_wall_s),
        }
        sms = []
        for sm in self._sms:
            if self.linear:
                sms.append(
                    SMTrace(
                        ops=np.asarray(sm.ops, dtype=np.int64),
                        fops=np.asarray(sm.fops, dtype=np.float64),
                        warp_start=np.zeros(0, dtype=np.int64),
                        warp_end=np.zeros(0, dtype=np.int64),
                        warp_ready=np.zeros(0, dtype=np.float64),
                        warp_parent=np.zeros(0, dtype=np.int64),
                    )
                )
                continue
            starts = []
            ends = []
            flat: List[int] = []
            for warp in sm.warps:
                starts.append(len(flat))
                flat.extend(warp.ops)
                ends.append(len(flat))
            sms.append(
                SMTrace(
                    ops=np.asarray(flat, dtype=np.int64),
                    fops=np.zeros(0, dtype=np.float64),
                    warp_start=np.asarray(starts, dtype=np.int64),
                    warp_end=np.asarray(ends, dtype=np.int64),
                    warp_ready=np.asarray(
                        [w.ready for w in sm.warps], dtype=np.float64
                    ),
                    warp_parent=np.asarray(
                        [w.parent for w in sm.warps], dtype=np.int64
                    ),
                )
            )
        layout = bvh.layout
        return MemTrace(
            meta=meta,
            image=result.image,
            treelet_base=np.asarray(layout.treelet_base, dtype=np.int64),
            treelet_sizes=np.asarray(layout.treelet_sizes, dtype=np.int64),
            sms=sms,
        )
