"""Which sweep axes a recorded trace can be replayed across, and why.

A trace records the *memory transaction stream* of one live run.  That
stream is a function of the traversal logic (purely functional in ray
states and the BVH), the BVH layout, and the engine's scheduling
decisions.  A configuration field is **replay-safe** when changing it
cannot change the recorded stream — only what each recorded transaction
*costs* — so re-pricing the stream through freshly configured cache and
DRAM models is exact:

* L2 geometry and latency (``l2_bytes``/``l2_assoc``/``l2_latency``),
  L1 associativity and hit latency, DRAM latency, the detailed-DRAM
  timing block, line-transfer and miss-serialization costs, the
  fixed-function intersection latency, and the gaussian leaf-cost knobs
  (``gaussian_alpha_cycles``/``gaussian_blend_cycles`` — trace format
  v2 records each step's test and leaf-lane counts, so replay reprices
  them) all sit *behind* the stream.

Everything else is **replay-unsafe** because it feeds the stream itself:

* ``l1_bytes`` sets ``treelet_bytes`` and therefore the BVH's treelet
  partition — a different BVH image, a different stream;
* ``line_bytes`` changes every line id in the stream;
* ``num_sms`` / ``warp_size`` / ``cta_threads`` / ``max_cta_per_sm`` /
  ``max_virtual_rays_per_sm`` change how rays are grouped and scheduled;
* raygen/shade/launch/sort/resume cycle costs move warp arrival times,
  which for the vtq engine reorders its phase interleaving;
* every ``VTQConfig`` field changes queueing decisions, and the policy
  itself selects a different engine.

Replay is exact across safe axes for **baseline** and **prefetch**
(their scheduler is re-run from the recorded warp genealogy).  The vtq
engine's phase schedule is timing-dependent, so its traces are pinned:
replayable bit-for-bit at the recorded configuration only.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Dict, Mapping, Tuple

from repro.errors import TraceError
from repro.gpusim.config import GPUConfig

#: GPUConfig fields whose value the recorded stream does not depend on.
REPLAY_SAFE_GPU_FIELDS = frozenset(
    {
        "l1_assoc",
        "l1_latency",
        "l2_bytes",
        "l2_assoc",
        "l2_latency",
        "dram_latency",
        "dram_line_transfer",
        "miss_serialization_cycles",
        "intersection_latency",
        "gaussian_alpha_cycles",
        "gaussian_blend_cycles",
        "detailed_dram",
        "dram_channels",
        "dram_banks",
        "dram_row_bytes",
        "dram_t_cas",
        "dram_t_rcd",
        "dram_t_rp",
        "dram_base_cycles",
    }
)

#: Policies whose scheduler replay re-runs exactly across safe axes.
CROSS_CONFIG_POLICIES = ("baseline", "prefetch")

_GPU_FIELD_NAMES = frozenset(f.name for f in dataclass_fields(GPUConfig))


def classify_axis(field_name: str) -> str:
    """``"replay-safe"`` or ``"replay-unsafe"`` for one GPUConfig field."""
    if field_name not in _GPU_FIELD_NAMES:
        raise TraceError(f"unknown GPUConfig field {field_name!r}")
    return (
        "replay-safe" if field_name in REPLAY_SAFE_GPU_FIELDS else "replay-unsafe"
    )


def _record_classification(result: str) -> None:
    from repro.obs import registry as obs_registry

    obs_registry().counter(
        "repro_memtrace_classifications_total",
        "Sweep-point replay-safety classifications by outcome.",
        ("result",),
    ).labels(result=result).inc()


def overrides_replay_safe(policy: str, overrides: Mapping[str, object]) -> bool:
    """Whether a sweep point (policy + GPU overrides) is replay-eligible.

    Records the decision in the ``repro_memtrace_classifications_total``
    observability counter.  Unknown fields classify as unsafe here (the
    live path will surface the real error).
    """
    if policy not in CROSS_CONFIG_POLICIES:
        _record_classification("unsafe-policy")
        return False
    for name in overrides:
        if name not in _GPU_FIELD_NAMES or name not in REPLAY_SAFE_GPU_FIELDS:
            _record_classification("unsafe-axis")
            return False
    _record_classification("safe")
    return True


def sweep_point_kind(
    policy: str,
    gpu_overrides: Mapping[str, object],
    vtq_overrides: Mapping[str, object] = (),
) -> str:
    """``"replay"`` or ``"live"`` for one sweep grid point.

    The surrogate's exact-run ledger (docs/SURROGATE.md) budgets by this
    split: VTQ axes always feed the stream, a point with no GPU
    overrides has no recorded-trace delta to re-price, and everything
    else defers to :func:`overrides_replay_safe`.
    """
    if vtq_overrides:
        return "live"
    if not gpu_overrides:
        return "live"
    return "replay" if overrides_replay_safe(policy, dict(gpu_overrides)) else "live"


def ensure_replayable(meta: Dict, overrides: Mapping[str, object]) -> None:
    """Validate a replay request against a trace's metadata.

    Raises :class:`TraceError` when the trace is partial, when an
    override names an unknown field, when a replay-unsafe field would
    actually change, or when a vtq trace is asked for any non-recorded
    configuration at all.
    """
    if meta.get("partial"):
        raise TraceError(
            "trace is partial (recording hit its size budget); "
            "partial traces cannot be replayed — re-record with a larger "
            "REPRO_TRACE_BUDGET_BYTES"
        )
    recorded_gpu = meta["gpu"]
    policy = meta.get("policy", "")
    changed = [
        name for name, value in overrides.items()
        if recorded_gpu.get(name) != value
    ]
    for name in overrides:
        if name not in _GPU_FIELD_NAMES:
            raise TraceError(f"unknown GPUConfig field {name!r}")
    if policy not in CROSS_CONFIG_POLICIES:
        if changed:
            raise TraceError(
                f"{policy!r} traces are pinned to the recorded schedule and "
                f"replay bit-for-bit at the recorded configuration only; "
                f"cannot change {sorted(changed)} (record a fresh trace or "
                f"run live)"
            )
        return
    unsafe = [name for name in changed if name not in REPLAY_SAFE_GPU_FIELDS]
    if unsafe:
        raise TraceError(
            f"fields {sorted(unsafe)} are replay-unsafe (they change the "
            f"memory access stream, not just its cost); run those points live"
        )


def normalize_overrides(overrides) -> Tuple[Tuple[str, object], ...]:
    """Canonical hashable form: a name-sorted tuple of (field, value) pairs.

    Accepts a mapping, an iterable of pairs, or ``None``.
    """
    if not overrides:
        return ()
    if isinstance(overrides, Mapping):
        items = overrides.items()
    else:
        items = list(overrides)
    return tuple(sorted((str(name), value) for name, value in items))
