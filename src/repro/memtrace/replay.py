"""Re-charge a recorded memory stream through fresh L1/L2/DRAM models.

Replay rebuilds the exact cache-hierarchy interaction of a live run
without re-running traversal: each recorded operation performs the same
``MemorySystem`` calls the engine made — per-lane ``access_lines`` with
the max-over-rays warp-step latency rule, ray-data loads, treelet burst
fetches, CTA state streams — against caches and DRAM built from the
*replay* configuration, while the traversal-side statistics (visits,
tests, SIMT samples, queue counters) are overlaid from the recording.

Scheduling:

* **baseline / prefetch** replay re-runs the size-1-warp-buffer
  greedy-then-oldest scheduler from the recorded warp genealogy, so the
  serialization of warps — and therefore every access's cycle stamp —
  is recomputed for the replay configuration.  This is exact across the
  replay-safe axes (:mod:`repro.memtrace.safety`).
* **vtq** replay walks the recorded chronological stream with explicit
  idle jumps; exact at the recorded configuration only.

The prefetcher is replayed live: recorded vote snapshots and candidate
lines drive a fresh popularity table wired to the replayed L1's demand
misses, so prefetch traffic and used/unused accounting respond to the
replay cache geometry exactly as a live run would.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TraceError
from repro.gpusim.config import GPUConfig
from repro.gpusim.memory import AccessKind, MemorySystem, make_shared_l2
from repro.gpusim.stats import SimStats, TraversalMode
from repro.memtrace.format import (
    MODE_LIST,
    OP_ADVANCE_TO,
    OP_CTA_RESTORE,
    OP_CTA_SAVE,
    OP_PF_NOTE,
    OP_PF_REFRESH,
    OP_RAY_LOAD_FINAL,
    OP_RAY_LOAD_REFILL,
    OP_RAY_LOAD_TS,
    OP_RAY_WRITE,
    OP_STEP,
    OP_TQ_END,
    OP_TQ_FETCH,
    MemTrace,
    SMTrace,
    apply_overlay,
)
from repro.memtrace.safety import ensure_replayable, normalize_overrides


class _ReplayPrefetcher:
    """The most-popular-treelet prefetcher, driven by recorded snapshots.

    Vote counts and candidate-access lines are functions of ray states
    (config-invariant), so they come from the trace; everything cache-
    dependent — which demand misses fire, which lines a prefetch
    installs, used/unused accounting — runs live against the replay L1.
    """

    def __init__(self, config, mem, stats, treelet_base, treelet_sizes, min_votes):
        self.config = config
        self.mem = mem
        self.stats = stats
        self.treelet_base = treelet_base
        self.treelet_sizes = treelet_sizes
        self.min_votes = min_votes
        self._votes: Dict[int, int] = {}
        self._outstanding: Dict[int, Dict[int, bool]] = {}
        mem.l1_miss_hook = self.on_miss

    def refresh(self, votes: Dict[int, int]) -> None:
        self._votes = votes
        self.settle({t for t, v in votes.items() if v >= self.min_votes})

    def settle(self, keep) -> None:
        for treelet in list(self._outstanding):
            if treelet in keep:
                continue
            for _line, used in self._outstanding.pop(treelet).items():
                if not used:
                    self.stats.prefetch_unused_lines += 1

    def note(self, lines) -> None:
        if not self._outstanding:
            return
        flat = {}
        for per_treelet in self._outstanding.values():
            flat.update((line, per_treelet) for line in per_treelet)
        for line in lines:
            holder = flat.get(line)
            if holder is not None:
                holder[line] = True

    def on_miss(self, line: int) -> None:
        address = line * self.config.line_bytes
        idx = int(np.searchsorted(self.treelet_base, address, side="right")) - 1
        if idx < 0 or address >= int(self.treelet_base[idx]) + int(
            self.treelet_sizes[idx]
        ):
            return  # access outside the BVH image (mirrors the live catch)
        if idx in self._outstanding:
            return
        if self._votes.get(idx, 0) < self.min_votes:
            return
        line_bytes = self.config.line_bytes
        start = int(self.treelet_base[idx]) // line_bytes
        end = (
            int(self.treelet_base[idx]) + int(self.treelet_sizes[idx])
            + line_bytes - 1
        ) // line_bytes
        new_lines = [l for l in range(start, end) if not self.mem.l1.contains(l)]
        self.mem.l1.insert_many(new_lines)
        self.stats.prefetch_lines += len(new_lines)
        self.stats.traffic_bytes["prefetch"] += len(new_lines) * line_bytes
        self.stats.traffic_bytes["dram"] += len(new_lines) * line_bytes
        self._outstanding[idx] = {l: False for l in new_lines}


def _exec_step(ops, p, cycle, mem, stats, config):
    """One recorded warp step: per-lane accesses + the latency rule."""
    mode = MODE_LIST[ops[p + 1]]
    tests = ops[p + 2]
    leaf_lanes = ops[p + 3]
    nlanes = ops[p + 4]
    p += 5
    max_latency = 0.0
    missing_lanes = 0
    misses = 0
    for _ in range(nlanes):
        nlines = ops[p]
        p += 1
        access_latency, lane_misses = mem.access_lines(
            ops[p : p + nlines], AccessKind.BVH, cycle
        )
        p += nlines
        if lane_misses:
            missing_lanes += 1
            misses += lane_misses
        if access_latency > max_latency:
            max_latency = access_latency
    latency = float(config.l1_latency)
    if missing_lanes:
        miss_fraction = missing_lanes / nlanes
        latency += miss_fraction * max(0.0, max_latency - config.l1_latency)
        latency += config.miss_serialization_cycles * (misses - 1)
    latency += config.intersection_latency
    # Leaf-cost operands (gaussian workloads only; zeros elsewhere) are
    # repriced from the *replay* config, making the gaussian cycle knobs
    # replay-safe axes.
    if tests or leaf_lanes:
        leaf_cycles = float(
            config.gaussian_alpha_cycles * tests
            + config.gaussian_blend_cycles * leaf_lanes
        )
        if leaf_cycles:
            latency += leaf_cycles
    stats.record_mode(mode, latency, 0)
    return p, cycle + latency, latency


def _exec_warp_span(ops, p, end, cycle, mem, stats, config, pf):
    """Replay one warp's op span (baseline/prefetch streams)."""
    while p < end:
        code = ops[p]
        if code == OP_STEP:
            p, cycle, _ = _exec_step(ops, p, cycle, mem, stats, config)
        elif code == OP_PF_REFRESH:
            count = ops[p + 1]
            p += 2
            votes = {}
            for _ in range(count):
                votes[ops[p]] = ops[p + 1]
                p += 2
            pf.refresh(votes)
        elif code == OP_PF_NOTE:
            count = ops[p + 1]
            pf.note(ops[p + 2 : p + 2 + count])
            p += 2 + count
        else:
            raise TraceError(f"unexpected op code {code} in a warp stream")
    return cycle


def _replay_warp_sm(sm: SMTrace, config, mem, stats, pf) -> float:
    """Genealogy replay: re-run the GTO scheduler over recorded warps."""
    ops = sm.ops.tolist()
    wstart = sm.warp_start.tolist()
    wend = sm.warp_end.tolist()
    wready = sm.warp_ready.tolist()
    wparent = sm.warp_parent.tolist()
    children: List[List[int]] = [[] for _ in wstart]
    heap = []
    seq = 0
    for i, parent in enumerate(wparent):
        if parent < 0:
            heapq.heappush(heap, (wready[i], seq, i))
            seq += 1
        else:
            children[parent].append(i)
    cycle = 0.0
    while heap:
        ready, _, i = heapq.heappop(heap)
        if ready > cycle:
            cycle = ready  # RT unit idles until the warp arrives
        cycle = _exec_warp_span(
            ops, wstart[i], wend[i], cycle, mem, stats, config, pf
        )
        for child in children[i]:
            heapq.heappush(heap, (cycle + wready[child], seq, child))
            seq += 1
    if pf is not None:
        pf.settle(set())
    return cycle


def _replay_linear_sm(sm: SMTrace, trace: MemTrace, config, vtq_meta, mem, stats):
    """Pinned-schedule replay of one SM's chronological vtq stream."""
    from repro.core.virtualization import cta_state_bytes

    ops = sm.ops.tolist()
    fops = sm.fops.tolist()
    treelet_base = trace.treelet_base
    treelet_sizes = trace.treelet_sizes
    line_bytes = config.line_bytes
    state_bytes = cta_state_bytes(config)
    state_lines = (state_bytes + line_bytes - 1) // line_bytes
    bandwidth_occupancy = float(config.dram_line_transfer * state_lines)
    preload = bool((vtq_meta or {}).get("preload_enabled", True))
    ts_mode = TraversalMode.TREELET_STATIONARY
    final_mode = TraversalMode.FINAL_RAY_STATIONARY

    cycle = 0.0
    fp = 0
    in_treelet_queue = False
    work_cycles = 0.0
    prev_warp_cycles = 0.0
    preload_credit = 0.0
    p = 0
    n = len(ops)
    while p < n:
        code = ops[p]
        if code == OP_STEP:
            p, cycle, latency = _exec_step(ops, p, cycle, mem, stats, config)
            if in_treelet_queue:
                work_cycles += latency
                prev_warp_cycles += latency
        elif code == OP_RAY_WRITE:
            count = ops[p + 1]
            for ray_id in ops[p + 2 : p + 2 + count]:
                mem.ray_data_access(ray_id, cycle, write=True)
            p += 2 + count
        elif code == OP_RAY_LOAD_TS:
            count = ops[p + 1]
            load_latency = 0.0
            for ray_id in ops[p + 2 : p + 2 + count]:
                load_latency = max(load_latency, mem.ray_data_access(ray_id, cycle))
            p += 2 + count
            if preload:
                load_latency = max(0.0, load_latency - prev_warp_cycles)
            cycle += load_latency
            work_cycles += load_latency
            stats.record_mode(ts_mode, load_latency)
            prev_warp_cycles = 0.0
        elif code in (OP_RAY_LOAD_FINAL, OP_RAY_LOAD_REFILL):
            count = ops[p + 1]
            load_latency = 0.0
            for ray_id in ops[p + 2 : p + 2 + count]:
                load_latency = max(load_latency, mem.ray_data_access(ray_id, cycle))
            p += 2 + count
            cycle += load_latency
            stats.record_mode(final_mode, load_latency)
        elif code == OP_TQ_FETCH:
            treelet = ops[p + 1]
            p += 2
            start = int(treelet_base[treelet]) // line_bytes
            end = (
                int(treelet_base[treelet]) + int(treelet_sizes[treelet])
                + line_bytes - 1
            ) // line_bytes
            fetch_latency = mem.fetch_treelet(range(start, end), cycle)
            if preload:
                fetch_latency -= min(preload_credit, fetch_latency)
            cycle += fetch_latency
            stats.record_mode(ts_mode, fetch_latency)
            in_treelet_queue = True
            work_cycles = 0.0
            prev_warp_cycles = 0.0
        elif code == OP_TQ_END:
            p += 1
            preload_credit = work_cycles if preload else 0.0
            in_treelet_queue = False
        elif code in (OP_CTA_SAVE, OP_CTA_RESTORE):
            p += 1
            mem.cta_state_transfer(state_bytes)
            cycle += bandwidth_occupancy
        elif code == OP_ADVANCE_TO:
            p += 1
            target = fops[fp]
            fp += 1
            if target > cycle:
                cycle = target
        else:
            raise TraceError(f"unexpected op code {code} in a linear stream")
    return cycle


def replay_trace(trace: MemTrace, gpu_overrides=None, *, record_obs: bool = True):
    """Replay ``trace`` at (recorded config + overrides); returns a
    :class:`repro.tracing.render.RenderResult` whose ``SimStats`` match
    what a live run at that configuration produces.

    Raises :class:`TraceError` for partial traces, replay-unsafe
    overrides, or cross-config requests on a pinned (vtq) trace.
    """
    started = time.perf_counter()
    meta = trace.meta
    overrides = dict(normalize_overrides(gpu_overrides))
    ensure_replayable(meta, overrides)
    gpu_fields = dict(meta["gpu"])
    gpu_fields.update(overrides)
    config = GPUConfig(**gpu_fields)
    policy = meta["policy"]
    vtq_meta = meta.get("vtq")
    prefetch_meta = meta.get("prefetch") or {}

    shared_l2 = make_shared_l2(config)
    per_sm_cycles: List[float] = []
    merged = SimStats()
    for index, sm in enumerate(trace.sms):
        stats = SimStats()
        mem = MemorySystem(config, stats, shared_l2)
        if policy == "vtq":
            cycle = _replay_linear_sm(sm, trace, config, vtq_meta, mem, stats)
        else:
            pf = None
            if policy == "prefetch":
                pf = _ReplayPrefetcher(
                    config, mem, stats, trace.treelet_base, trace.treelet_sizes,
                    int(prefetch_meta.get("min_votes", 1)),
                )
            cycle = _replay_warp_sm(sm, config, mem, stats, pf)
        stats.total_cycles = max(stats.total_cycles, cycle)
        apply_overlay(stats, meta["overlays"][index])
        per_sm_cycles.append(cycle)
        merged.merge(stats)

    from repro.tracing.render import RenderResult

    result = RenderResult(
        policy=policy,
        image=trace.image,
        stats=merged,
        cycles=max(per_sm_cycles) if per_sm_cycles else 0.0,
        per_sm_cycles=per_sm_cycles,
        scene_name=trace.scene,
    )
    result.replayed = True
    wall = time.perf_counter() - started
    result.replay_wall_s = wall
    if record_obs:
        from repro.obs import record_sim_stats
        from repro.obs import registry as obs_registry

        record_sim_stats(merged, scene=trace.scene, policy=policy)
        registry = obs_registry()
        registry.counter(
            "repro_memtrace_traces_total",
            "Memory-trace store events by kind.",
            ("event",),
        ).labels(event="replayed").inc()
        registry.histogram(
            "repro_memtrace_replay_seconds",
            "Wall time of one trace replay.",
        ).labels().observe(wall)
        record_wall = meta.get("record_wall_s") or 0.0
        if wall > 0.0 and record_wall > 0.0:
            registry.histogram(
                "repro_memtrace_replay_speedup",
                "Live-record wall time over replay wall time, per replay.",
            ).labels().observe(record_wall / wall)
    return result
