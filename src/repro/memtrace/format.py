"""On-disk format of recorded memory traces.

A trace file is one header line followed by a compressed npz payload::

    memtrace <version> <sha256-of-payload>\n
    <np.savez_compressed bytes>

The header makes the kind detectable from the first bytes (chrome
timelines, the *other* trace artifact this repo produces, start with
``{``), carries the format version, and checksums the payload the same
way the hardened experiment cache checksums its entries: any flipped
byte fails verification with a typed :class:`repro.errors.TraceError`
and the caller re-records.

The payload holds, per SM, a flat ``int64`` token stream of *operations*
plus a ``float64`` literal stream.  Two stream shapes exist:

* **warp mode** (baseline / prefetch): one op span per warp, plus the
  warp *genealogy* — each warp's ready cycle (absolute for primaries,
  a delta from the parent's completion for children) and parent index.
  Replay re-runs the greedy-then-oldest scheduler over the genealogy,
  which stays exact when memory-hierarchy parameters change.
* **linear mode** (vtq): one chronological op stream per SM with the
  unit's idle jumps recorded as ``ADVANCE_TO`` literals.  Bit-exact at
  the recorded configuration only (see ``docs/MEMTRACE.md``).

JSON metadata (scene, policy, full GPU config, per-SM stat overlays,
image shape, partial marker) rides inside the npz as a ``uint8`` array.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.errors import TraceError
from repro.gpusim.stats import SimStats, TraversalMode

# Version 2 extends OP_STEP with the leaf-cost operands (tests,
# leaf_lanes) so gaussian-workload traces can reprice alpha-evaluation
# cycles at replay time.  Triangle workloads record zeros there and the
# replayed numbers are unchanged.
TRACE_VERSION = "2"
_MAGIC = b"memtrace "

# -- operation codes -----------------------------------------------------------
#
# Each op is a code token followed by its integer operands; only
# ADVANCE_TO consumes a literal from the float stream.

OP_STEP = 1            # mode, tests, leaf_lanes, nlanes, then per lane: nlines, line ids
OP_PF_REFRESH = 2      # nvotes, then (treelet, votes) pairs
OP_PF_NOTE = 3         # nlines, line ids
OP_RAY_WRITE = 4       # nrays, ray ids
OP_RAY_LOAD_TS = 5     # nrays, ray ids (treelet-stationary warp load)
OP_RAY_LOAD_FINAL = 6  # nrays, ray ids (final-phase warp load)
OP_RAY_LOAD_REFILL = 7  # nrays, ray ids (warp-repack refill load)
OP_TQ_FETCH = 8        # treelet id
OP_TQ_END = 9          # (no operands)
OP_CTA_SAVE = 10       # (no operands)
OP_CTA_RESTORE = 11    # (no operands)
OP_ADVANCE_TO = 12     # one float literal: absolute target cycle

# Traversal modes are encoded by their position in the enum's definition
# order, which is stable (the enum mirrors the paper's three phases).
MODE_LIST = list(TraversalMode)
MODE_CODES = {mode: idx for idx, mode in enumerate(MODE_LIST)}

# Stat fields the replay *carries over* from the live run instead of
# recomputing: everything produced by traversal logic and bookkeeping
# that never touches the memory hierarchy.  The memory-dependent rest
# (cache counters, traffic, DRAM, timeline, mode cycles, prefetch and
# treelet-fetch lines, total cycles) is recomputed through fresh models.
OVERLAY_SCALARS = (
    "simt_active_sum",
    "simt_steps",
    "rays_traced",
    "rays_completed",
    "warps_processed",
    "node_visits",
    "leaf_visits",
    "triangle_tests",
    "treelet_queue_pushes",
    "treelet_queue_pops",
    "warp_repacks",
    "cta_saves",
    "cta_restores",
    "queue_table_overflows",
    "count_table_evictions",
    "queue_table_peak_entries",
    "count_table_peak_entries",
)


def overlay_from_stats(stats: SimStats) -> Dict:
    """The carried-over view of one SM's live statistics (pure reader)."""
    out = {name: getattr(stats, name) for name in OVERLAY_SCALARS}
    out["mode_tests"] = {
        mode.value: tests
        for mode, tests in sorted(
            stats.mode_tests.items(), key=lambda item: item[0].value
        )
    }
    return out


def apply_overlay(stats: SimStats, overlay: Dict) -> None:
    """Add one SM's carried-over counters onto a replayed ``SimStats``."""
    for name in OVERLAY_SCALARS:
        if name in ("queue_table_peak_entries", "count_table_peak_entries"):
            setattr(stats, name, max(getattr(stats, name), overlay[name]))
        else:
            setattr(stats, name, getattr(stats, name) + overlay[name])
    for mode_value, tests in overlay["mode_tests"].items():
        stats.mode_tests[TraversalMode(mode_value)] += tests


@dataclass
class SMTrace:
    """One SM's recorded stream."""

    ops: np.ndarray          # int64 token stream
    fops: np.ndarray         # float64 literals (linear mode only)
    warp_start: np.ndarray   # int64 op-span offsets, per warp (warp mode)
    warp_end: np.ndarray
    warp_ready: np.ndarray   # float64: absolute ready / delta from parent end
    warp_parent: np.ndarray  # int64: -1 for primaries


@dataclass
class MemTrace:
    """A decoded memory trace: metadata, static tables and SM streams."""

    meta: Dict
    image: np.ndarray
    treelet_base: np.ndarray
    treelet_sizes: np.ndarray
    sms: List[SMTrace] = field(default_factory=list)

    @property
    def scene(self) -> str:
        return self.meta.get("scene", "")

    @property
    def policy(self) -> str:
        return self.meta.get("policy", "")

    @property
    def partial(self) -> bool:
        return bool(self.meta.get("partial", False))

    def num_tokens(self) -> int:
        return int(sum(len(sm.ops) + len(sm.fops) for sm in self.sms))

    def num_warps(self) -> int:
        return int(sum(len(sm.warp_start) for sm in self.sms))


# -- encode / decode -----------------------------------------------------------


def encode_trace(trace: MemTrace) -> bytes:
    """Serialize to header + checksummed compressed-npz bytes."""
    arrays = {
        "image": np.asarray(trace.image, dtype=np.float64),
        "treelet_base": np.asarray(trace.treelet_base, dtype=np.int64),
        "treelet_sizes": np.asarray(trace.treelet_sizes, dtype=np.int64),
        "meta": np.frombuffer(
            json.dumps(trace.meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
    }
    for j, sm in enumerate(trace.sms):
        arrays[f"sm{j}_ops"] = np.asarray(sm.ops, dtype=np.int64)
        arrays[f"sm{j}_fops"] = np.asarray(sm.fops, dtype=np.float64)
        arrays[f"sm{j}_wstart"] = np.asarray(sm.warp_start, dtype=np.int64)
        arrays[f"sm{j}_wend"] = np.asarray(sm.warp_end, dtype=np.int64)
        arrays[f"sm{j}_wready"] = np.asarray(sm.warp_ready, dtype=np.float64)
        arrays[f"sm{j}_wparent"] = np.asarray(sm.warp_parent, dtype=np.int64)
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    payload = buf.getvalue()
    digest = hashlib.sha256(payload).hexdigest()
    header = _MAGIC + f"{TRACE_VERSION} {digest}\n".encode("ascii")
    return header + payload


def decode_trace(data: bytes) -> MemTrace:
    """Parse and verify trace bytes; raises :class:`TraceError` on any defect."""
    if not data.startswith(_MAGIC):
        raise TraceError("not a memory trace (missing 'memtrace' header)")
    newline = data.find(b"\n")
    if newline < 0:
        raise TraceError("truncated memory trace: no header line")
    fields = data[:newline].decode("ascii", errors="replace").split()
    if len(fields) != 3:
        raise TraceError("malformed memory-trace header line")
    _magic, version, digest = fields
    if version != TRACE_VERSION:
        raise TraceError(
            f"memory-trace version {version!r} unsupported "
            f"(this build reads version {TRACE_VERSION!r})"
        )
    payload = data[newline + 1:]
    actual = hashlib.sha256(payload).hexdigest()
    if actual != digest:
        raise TraceError(
            f"memory-trace checksum mismatch: header says {digest[:12]}..., "
            f"payload hashes to {actual[:12]}..."
        )
    try:
        npz = np.load(io.BytesIO(payload), allow_pickle=False)
    except Exception as exc:
        raise TraceError(f"undecodable memory-trace payload: {exc}") from exc
    try:
        meta = json.loads(bytes(npz["meta"]).decode("utf-8"))
        num_sms = int(meta["num_sms"])
        sms = [
            SMTrace(
                ops=npz[f"sm{j}_ops"],
                fops=npz[f"sm{j}_fops"],
                warp_start=npz[f"sm{j}_wstart"],
                warp_end=npz[f"sm{j}_wend"],
                warp_ready=npz[f"sm{j}_wready"],
                warp_parent=npz[f"sm{j}_wparent"],
            )
            for j in range(num_sms)
        ]
        return MemTrace(
            meta=meta,
            image=npz["image"],
            treelet_base=npz["treelet_base"],
            treelet_sizes=npz["treelet_sizes"],
            sms=sms,
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceError(f"incomplete memory-trace payload: {exc}") from exc


def save_trace(trace: MemTrace, path) -> int:
    """Atomically write ``trace`` to ``path``; returns bytes written."""
    path = Path(path)
    data = encode_trace(trace)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(data)


def load_trace(path) -> MemTrace:
    """Read and verify a trace file; raises :class:`TraceError` on defects."""
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise TraceError(f"cannot read memory trace {path}: {exc}") from exc
    return decode_trace(data)


def trace_file_info(path) -> Dict:
    """What kind of trace a file is, plus a summary of its contents.

    Distinguishes the two trace artifacts this repo writes: *memory
    traces* (this module; replayable through ``repro trace replay``) and
    *chrome activity timelines* (``--trace-out``; viewable in a
    ``chrome://tracing``-compatible viewer).
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise TraceError(f"cannot read {path}: {exc}") from exc
    info: Dict = {"path": str(path), "bytes": len(data)}
    if data.startswith(_MAGIC):
        info["kind"] = "memory-trace"
        try:
            trace = decode_trace(data)
        except TraceError as exc:
            info["error"] = str(exc)
            return info
        meta = trace.meta
        info.update(
            version=meta.get("version"),
            scene=trace.scene,
            policy=trace.policy,
            num_sms=meta.get("num_sms"),
            partial=trace.partial,
            tokens=trace.num_tokens(),
            warps=trace.num_warps(),
            record_wall_s=meta.get("record_wall_s"),
            cycles=max(meta.get("per_sm_cycles", [0.0]) or [0.0]),
        )
        return info
    try:
        doc = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        info["kind"] = "unknown"
        return info
    if isinstance(doc, dict) and "traceEvents" in doc:
        info["kind"] = "chrome-timeline"
        info["events"] = len(doc["traceEvents"])
        return info
    info["kind"] = "unknown"
    return info
