"""Command line interface: ``python -m repro <command>``.

Commands:

* ``scenes``  — list the synthetic LumiBench suite.
* ``render``  — path trace one scene under a chosen policy, write a PPM.
* ``compare`` — render one scene under all policies and print the table.
* ``figure``  — regenerate one paper figure/table by name.
* ``report``  — regenerate every figure (what EXPERIMENTS.md is built from).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bvh import build_scene_bvh
from repro.gpusim.config import default_setup
from repro.scenes import load_scene, scene_names, scene_spec
from repro.tracing import render_scene
from repro.tracing.image import tonemap, write_ppm

_FIGURES = {}


def _figures():
    """Figure registry, imported lazily to keep `scenes` snappy."""
    global _FIGURES
    if not _FIGURES:
        from repro.experiments.figures import figure_registry

        _FIGURES = figure_registry()
    return _FIGURES


def _warm(names, context, jobs) -> None:
    """Precompute the figures' cases in parallel before the serial replay."""
    from repro.experiments.parallel import cases_for_figures, jobs_from_env, warm_cases

    if jobs is None:
        jobs = jobs_from_env()
    if jobs > 1:
        warm_cases(cases_for_figures(names, context), context, jobs=jobs)


def cmd_scenes(args) -> int:
    print(f"{'scene':6s} {'paper BVH MB':>12s} {'paper tris':>11s} "
          f"{'tris @ scale 1':>14s}")
    for name in scene_names(include_extra=args.all):
        spec = scene_spec(name)
        print(f"{name:6s} {spec.paper_bvh_mb:12.2f} {spec.paper_tris / 1e6:10.2f}M "
              f"{spec.target_triangles(1.0):14d}")
    return 0


def cmd_render(args) -> int:
    setup = default_setup()
    scene = load_scene(args.scene, scale=setup.scene_scale)
    bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=setup.gpu.treelet_bytes)
    result = render_scene(scene, bvh, setup, policy=args.policy,
                          sanitize=True if args.sanitize else None)
    print(f"{args.policy}: {result.cycles:,.0f} cycles, "
          f"SIMT {result.stats.simt_efficiency():.2f}, "
          f"L1 miss {result.stats.miss_rate('l1'):.2f}")
    out = args.output or f"{args.scene.lower()}_{args.policy}.ppm"
    write_ppm(out, tonemap(result.image))
    print(f"wrote {out}")
    return 0


def cmd_compare(args) -> int:
    setup = default_setup()
    scene = load_scene(args.scene, scale=setup.scene_scale)
    bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=setup.gpu.treelet_bytes)
    baseline = None
    print(f"{'policy':9s} {'cycles':>14s} {'speedup':>8s} {'SIMT':>6s} {'L1 miss':>8s}")
    for policy in ("baseline", "prefetch", "vtq"):
        result = render_scene(scene, bvh, setup, policy=policy)
        if baseline is None:
            baseline = result.cycles
        print(f"{policy:9s} {result.cycles:14,.0f} {baseline / result.cycles:7.2f}x "
              f"{result.stats.simt_efficiency():6.2f} "
              f"{result.stats.miss_rate('l1'):8.2f}")
    return 0


def _finish_run(strict: bool) -> int:
    """Print the quarantine summary; exit 3 under ``--strict`` if any."""
    from repro.experiments import failures, format_failures

    recorded = failures()
    if recorded:
        print("\n" + format_failures(recorded), file=sys.stderr)
        if strict:
            return 3
    return 0


def cmd_figure(args) -> int:
    from repro.experiments import clear_failures, default_context, format_table

    figures = _figures()
    if args.name not in figures:
        print(f"unknown figure {args.name!r}; choose from: "
              + ", ".join(sorted(figures)), file=sys.stderr)
        return 2
    clear_failures()
    context = default_context(fast=args.fast)
    _warm([args.name], context, args.jobs)
    print(format_table(figures[args.name](context)))
    return _finish_run(args.strict)


def cmd_report(args) -> int:
    from repro.experiments import clear_failures, default_context, format_table

    clear_failures()
    context = default_context(fast=args.fast)
    figures = _figures()
    _warm(list(figures), context, args.jobs)
    for name, fig in figures.items():
        print(format_table(fig(context)))
        print("\n" + "=" * 72 + "\n")
    return _finish_run(args.strict)


def cmd_export(args) -> int:
    """Write one figure's table to CSV/JSON/text, suffix picks the format."""
    from repro.experiments import default_context
    from repro.experiments.report import export

    figures = _figures()
    if args.name not in figures:
        print(f"unknown figure {args.name!r}; choose from: "
              + ", ".join(sorted(figures)), file=sys.stderr)
        return 2
    context = default_context(fast=args.fast)
    export(figures[args.name](context), args.output)
    print(f"wrote {args.output}")
    return 0


def cmd_sweep(args) -> int:
    """Sweep one VTQConfig or GPUConfig field on one scene."""
    from repro.experiments import default_context, format_table
    from repro.experiments.sweeps import sweep_gpu_param, sweep_vtq_param

    context = default_context(fast=args.fast)
    values = []
    for token in args.values.split(","):
        token = token.strip()
        values.append(float(token) if "." in token else int(token))
    try:
        if args.target == "vtq":
            table = sweep_vtq_param(args.scene, context, args.param, values)
        else:
            table = sweep_gpu_param(args.scene, context, args.param, values)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_table(table))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Treelet Accelerated Ray Tracing on GPUs'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("scenes", help="list the evaluation scenes")
    p.add_argument("--all", action="store_true", help="include WKND/SHIP")
    p.set_defaults(func=cmd_scenes)

    p = sub.add_parser("render", help="render one scene")
    p.add_argument("scene", choices=scene_names(include_extra=True))
    p.add_argument("--policy", default="vtq",
                   choices=("baseline", "prefetch", "vtq"))
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--sanitize", action="store_true",
                   help="run the simulation-state sanitizer on the result")
    p.set_defaults(func=cmd_render)

    p = sub.add_parser("compare", help="render one scene under every policy")
    p.add_argument("scene", choices=scene_names(include_extra=True))
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("figure", help="regenerate one paper figure")
    p.add_argument("name")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--strict", action="store_true",
                   help="exit with status 3 if any case was quarantined")
    p.add_argument("--jobs", type=int, default=None,
                   help="parallel sweep workers (default: REPRO_JOBS or CPU count)")
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("report", help="regenerate every figure")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--strict", action="store_true",
                   help="exit with status 3 if any case was quarantined")
    p.add_argument("--jobs", type=int, default=None,
                   help="parallel sweep workers (default: REPRO_JOBS or CPU count)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("export", help="write one figure to CSV/JSON/text")
    p.add_argument("name")
    p.add_argument("output", help="path; .csv / .json / anything-else=text")
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("sweep", help="sweep a design parameter on one scene")
    p.add_argument("target", choices=("vtq", "gpu"))
    p.add_argument("param", help="e.g. queue_threshold or l1_bytes")
    p.add_argument("values", help="comma-separated, e.g. 8,32,128")
    p.add_argument("--scene", default="SPNZA",
                   choices=scene_names(include_extra=True))
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=cmd_sweep)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
