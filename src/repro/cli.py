"""Command line interface: ``python -m repro <command>``.

Commands:

* ``scenes``  — list the synthetic LumiBench suite.
* ``render``  — path trace one scene under a chosen policy, write a PPM.
* ``compare`` — render one scene under all policies and print the table.
* ``figure``  — regenerate one paper figure/table by name.
* ``report``  — regenerate every figure (what EXPERIMENTS.md is built from).
* ``serve``   — run the simulation-serving daemon (see docs/SERVICE.md).
* ``submit``  — submit one case (or a whole figure's cases) to the server.
* ``jobs``    — list the server's job records.
* ``cancel``  — cancel a queued job.
* ``stats``   — render a metrics snapshot: the live server's registry, or
  the run manifest of a finished run (see docs/OBSERVABILITY.md).
* ``trace``   — record / replay / inspect memory traces (docs/MEMTRACE.md).
* ``pareto``  — surrogate-price a cache x queue grid and emit a verified
  speedup-vs-cost Pareto frontier (JSON + SVG; docs/SURROGATE.md).
* ``chaos``   — run a seeded chaos schedule (worker kills/hangs, disk
  full, slow I/O) against a real sweep and assert the resilience
  invariants (docs/ROBUSTNESS.md).

Two distinct trace artifacts exist: ``--trace-out`` (on ``figure`` /
``report``) writes a **chrome activity timeline** for human viewing,
while ``--record-trace`` (on ``render``) and ``trace record`` write a
**memory trace** that ``trace replay`` can re-price through a different
cache hierarchy.  ``trace info`` tells you which kind a file is.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bvh import build_scene_bvh
from repro.gpusim.config import default_setup
from repro.scenes import load_scene, scene_names, scene_spec
from repro.tracing import render_scene
from repro.tracing.image import tonemap, write_ppm

_FIGURES = {}


def _figures():
    """Figure registry, imported lazily to keep `scenes` snappy."""
    global _FIGURES
    if not _FIGURES:
        from repro.experiments.figures import figure_registry

        _FIGURES = figure_registry()
    return _FIGURES


def _warm(names, context, jobs) -> None:
    """Precompute the figures' cases in parallel before the serial replay."""
    from repro.experiments.parallel import cases_for_figures, jobs_from_env, warm_cases

    if jobs is None:
        jobs = jobs_from_env()
    if jobs > 1:
        warm_cases(cases_for_figures(names, context), context, jobs=jobs)


def cmd_scenes(args) -> int:
    print(f"{'scene':6s} {'paper BVH MB':>12s} {'paper tris':>11s} "
          f"{'tris @ scale 1':>14s}")
    for name in scene_names(include_extra=args.all):
        spec = scene_spec(name)
        print(f"{name:6s} {spec.paper_bvh_mb:12.2f} {spec.paper_tris / 1e6:10.2f}M "
              f"{spec.target_triangles(1.0):14d}")
    return 0


def cmd_render(args) -> int:
    setup = default_setup()
    scene = load_scene(args.scene, scale=setup.scene_scale)
    bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=setup.gpu.treelet_bytes)
    if args.record_trace:
        from repro.errors import TraceError
        from repro.memtrace import RECORDABLE_POLICIES, save_trace
        from repro.memtrace.store import record_trace

        if args.policy not in RECORDABLE_POLICIES:
            print(f"--record-trace supports policies "
                  f"{', '.join(RECORDABLE_POLICIES)}; not {args.policy!r}",
                  file=sys.stderr)
            return 2
        try:
            trace, result = record_trace(
                scene, bvh, setup, args.policy, scene_name=args.scene,
                sanitize=True if args.sanitize else None,
            )
            nbytes = save_trace(trace, args.record_trace)
        except TraceError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(f"recorded memory trace {args.record_trace} "
              f"({nbytes:,d} bytes, {trace.num_warps()} warps, "
              f"{trace.num_tokens()} tokens)")
    else:
        result = render_scene(scene, bvh, setup, policy=args.policy,
                              sanitize=True if args.sanitize else None)
    print(f"{args.policy}: {result.cycles:,.0f} cycles, "
          f"SIMT {result.stats.simt_efficiency():.2f}, "
          f"L1 miss {result.stats.miss_rate('l1'):.2f}")
    out = args.output or f"{args.scene.lower()}_{args.policy}.ppm"
    write_ppm(out, tonemap(result.image))
    print(f"wrote {out}")
    return 0


def cmd_compare(args) -> int:
    setup = default_setup()
    scene = load_scene(args.scene, scale=setup.scene_scale)
    bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=setup.gpu.treelet_bytes)
    baseline = None
    print(f"{'policy':9s} {'cycles':>14s} {'speedup':>8s} {'SIMT':>6s} {'L1 miss':>8s}")
    for policy in ("baseline", "prefetch", "vtq"):
        result = render_scene(scene, bvh, setup, policy=policy)
        if baseline is None:
            baseline = result.cycles
        print(f"{policy:9s} {result.cycles:14,.0f} {baseline / result.cycles:7.2f}x "
              f"{result.stats.simt_efficiency():6.2f} "
              f"{result.stats.miss_rate('l1'):8.2f}")
    return 0


def _finish_run(strict: bool) -> int:
    """Print the quarantine summary; exit 3 under ``--strict`` if any."""
    from repro.experiments import failures, format_failures

    recorded = failures()
    if recorded:
        print("\n" + format_failures(recorded), file=sys.stderr)
        if strict:
            return 3
    return 0


def _write_trace(trace_out: str, names, context) -> None:
    """Chrome-trace one representative case of the named figures.

    Figures replay their cases as cache hits, so span recording needs a
    dedicated re-render; a VTQ case is preferred (its three-phase
    structure is what the timeline was built to show).  Purely
    observational: cached figure results are untouched.
    """
    from repro.experiments.parallel import cases_for_figures
    from repro.experiments.runner import scene_and_bvh
    from repro.gpusim.timeline import merge_timelines, write_chrome_trace
    from repro.tracing import render_scene as render

    cases = cases_for_figures(names, context)
    spec = next((c for c in cases if c.policy == "vtq"), None)
    if spec is None:
        spec = cases[0] if cases else None
    if spec is None:
        print("no simulator cases in this figure; nothing to trace",
              file=sys.stderr)
        return
    scene, bvh = scene_and_bvh(spec.scene, context.setup)
    result = render(
        scene, bvh, context.setup, policy=spec.policy, vtq_config=spec.vtq,
        record_timeline=True,
    )
    spans = merge_timelines(result.timelines)
    write_chrome_trace(spans, trace_out)
    print(f"wrote {trace_out} ({len(spans)} spans, {spec.scene}/{spec.policy}; "
          "open in chrome://tracing or Perfetto)")


def _write_run_manifest(manifest_path, started, config, **extra) -> None:
    """Write a run manifest (config + git rev + timings + metrics)."""
    import time

    from repro.experiments import failures
    from repro.obs import write_manifest

    path = write_manifest(
        path=manifest_path,
        started=started,
        finished=time.time(),
        config=config,
        failures=len(failures()),
        **extra,
    )
    if path is not None:
        print(f"wrote run manifest {path}")


def cmd_figure(args) -> int:
    import time

    from repro.experiments import clear_failures, default_context, format_table

    figures = _figures()
    if args.name not in figures:
        print(f"unknown figure {args.name!r}; choose from: "
              + ", ".join(sorted(figures)), file=sys.stderr)
        return 2
    clear_failures()
    started = time.time()
    context = default_context(fast=args.fast)
    _warm([args.name], context, args.jobs)
    print(format_table(figures[args.name](context)))
    if args.trace_out:
        _write_trace(args.trace_out, [args.name], context)
    status = _finish_run(args.strict)
    if args.manifest:
        _write_run_manifest(
            args.manifest, started,
            {"figure": args.name, "fast": args.fast, "jobs": args.jobs},
        )
    return status


def cmd_report(args) -> int:
    import time

    from repro.experiments import clear_failures, default_context, format_table

    clear_failures()
    started = time.time()
    context = default_context(fast=args.fast)
    figures = _figures()
    _warm(list(figures), context, args.jobs)
    for name, fig in figures.items():
        print(format_table(fig(context)))
        print("\n" + "=" * 72 + "\n")
    if args.trace_out:
        _write_trace(args.trace_out, list(figures), context)
    status = _finish_run(args.strict)
    if args.manifest:
        _write_run_manifest(
            args.manifest, started,
            {"figures": sorted(figures), "fast": args.fast, "jobs": args.jobs},
        )
    return status


def cmd_export(args) -> int:
    """Write one figure's table to CSV/JSON/text, suffix picks the format.

    A run manifest (``<output>.manifest.json``) always rides along so a
    figure artifact carries its own provenance; ``--no-manifest`` opts
    out.
    """
    import time

    from repro.experiments import default_context
    from repro.experiments.report import export

    figures = _figures()
    if args.name not in figures:
        print(f"unknown figure {args.name!r}; choose from: "
              + ", ".join(sorted(figures)), file=sys.stderr)
        return 2
    started = time.time()
    context = default_context(fast=args.fast)
    export(figures[args.name](context), args.output)
    print(f"wrote {args.output}")
    if not args.no_manifest:
        from repro.obs import manifest_path_for

        _write_run_manifest(
            manifest_path_for(args.output), started,
            {"figure": args.name, "fast": args.fast, "output": args.output},
        )
    return 0


def cmd_stats(args) -> int:
    """Render a metrics snapshot: live server, or a finished run's manifest."""
    import json

    from repro.errors import ReproError
    from repro.obs import MetricsRegistry, read_manifest, render_snapshot_text

    header = None
    if args.source:
        try:
            data = read_manifest(args.source)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {args.source}: {exc}", file=sys.stderr)
            return 2
        if "metrics" in data:  # a run manifest wrapping a snapshot
            snap = data["metrics"]
            wall = data.get("wall_seconds")
            header = (
                f"run manifest: {data.get('command', '?')}\n"
                f"git {data.get('git_revision') or 'unknown'}"
                + (f"  wall {wall:.2f}s" if wall is not None else "")
                + f"  quarantined {data.get('quarantined_cases', 0)}"
            )
        else:  # a bare registry snapshot
            snap = data
    else:
        try:
            snap = _service_client(args).metrics(format="json")
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.format == "json":
        print(json.dumps(snap, indent=2, sort_keys=True))
    elif args.format == "prom":
        registry = MetricsRegistry()
        registry.merge_snapshot(snap)
        print(registry.render_prometheus(), end="")
    else:
        if header:
            print(header + "\n")
        print(render_snapshot_text(snap))
    return 0


def cmd_sweep(args) -> int:
    """Sweep one VTQConfig or GPUConfig field on one scene."""
    from repro.experiments import default_context, format_table
    from repro.experiments.sweeps import sweep_gpu_param, sweep_vtq_param

    context = default_context(fast=args.fast)
    values = []
    for token in args.values.split(","):
        token = token.strip()
        values.append(float(token) if "." in token else int(token))
    try:
        if args.target == "vtq":
            table = sweep_vtq_param(args.scene, context, args.param, values)
        else:
            table = sweep_gpu_param(args.scene, context, args.param, values)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_table(table))
    return 0


# -- memory-trace verbs (docs/MEMTRACE.md) ------------------------------------


def _parse_overrides(tokens) -> List:
    """``--set field=value`` pairs → [(field, value), ...]; numbers typed."""
    pairs = []
    for token in tokens or []:
        field, sep, raw = token.partition("=")
        if not sep or not field:
            raise ValueError(f"--set wants field=value, got {token!r}")
        raw = raw.strip()
        try:
            value = float(raw) if "." in raw or "e" in raw.lower() else int(raw)
        except ValueError:
            raise ValueError(f"--set {field}: {raw!r} is not a number")
        pairs.append((field, value))
    return pairs


def cmd_trace_record(args) -> int:
    """Record one case's memory trace to a file (live run with capture on)."""
    from repro.experiments import default_context
    from repro.experiments.runner import scene_and_bvh
    from repro.memtrace import save_trace
    from repro.memtrace.store import record_trace

    context = default_context(fast=args.fast)
    scene_name = args.scene.upper()
    scene, bvh = scene_and_bvh(scene_name, context.setup)
    budget = context.case_budget()
    trace, result = record_trace(
        scene, bvh, context.setup, args.policy,
        scene_name=scene_name,
        allow_partial=args.allow_partial,
        cycle_budget=budget.max_cycles if budget else None,
        sanitize=context.sanitize,
    )
    out = args.output or f"{scene_name.lower()}_{args.policy}.memtrace"
    nbytes = save_trace(trace, out)
    partial = " (partial — replay will refuse it)" if trace.partial else ""
    print(f"recorded {out}: {nbytes:,d} bytes, {trace.num_warps()} warps, "
          f"{trace.num_tokens()} tokens, {result.cycles:,.0f} cycles{partial}")
    return 0


def cmd_trace_replay(args) -> int:
    """Replay a memory trace, optionally at a changed memory hierarchy."""
    from repro.memtrace import load_trace, replay_trace

    overrides = _parse_overrides(args.set)
    trace = load_trace(args.path)
    result = replay_trace(trace, tuple(overrides) or None)
    changed = (" with " + ", ".join(f"{k}={v}" for k, v in overrides)
               if overrides else " at the recorded config")
    print(f"replayed {trace.scene}/{trace.policy}{changed}")
    print(f"{result.policy}: {result.cycles:,.0f} cycles, "
          f"SIMT {result.stats.simt_efficiency():.2f}, "
          f"L1 miss {result.stats.miss_rate('l1'):.2f}")
    record_wall = trace.meta.get("record_wall_s") or 0.0
    if result.replay_wall_s > 0.0 and record_wall > 0.0:
        print(f"replay {result.replay_wall_s:.3f}s vs recorded live run "
              f"{record_wall:.3f}s "
              f"({record_wall / result.replay_wall_s:.1f}x)")
    return 0


def cmd_trace_info(args) -> int:
    """Say which kind of trace a file is and summarize its contents."""
    import json

    from repro.memtrace import trace_file_info

    info = trace_file_info(args.path)
    if args.format == "json":
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0 if "error" not in info else 2
    kind = info["kind"]
    if kind == "memory-trace":
        print(f"{info['path']}: memory trace (replayable via `repro trace "
              f"replay`), {info['bytes']:,d} bytes")
        if "error" in info:
            print(f"  DEFECTIVE: {info['error']}", file=sys.stderr)
            return 2
        print(f"  scene {info['scene']}  policy {info['policy']}  "
              f"version {info['version']}  SMs {info['num_sms']}")
        print(f"  {info['warps']} warps, {info['tokens']} tokens, "
              f"{info['cycles']:,.0f} cycles"
              + ("  [partial]" if info["partial"] else ""))
        if info.get("record_wall_s"):
            print(f"  recorded in {info['record_wall_s']:.3f}s")
    elif kind == "chrome-timeline":
        print(f"{info['path']}: chrome activity timeline "
              f"({info['events']} events, {info['bytes']:,d} bytes; "
              "open in chrome://tracing or Perfetto — written by "
              "--trace-out, not replayable)")
    else:
        print(f"{info['path']}: not a trace this repo writes "
              f"({info['bytes']:,d} bytes)")
        return 2
    return 0


def cmd_trace(args) -> int:
    from repro.errors import TraceError

    try:
        return args.trace_func(args)
    except (TraceError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2


# -- simulation service verbs (docs/SERVICE.md) -------------------------------


def cmd_serve(args) -> int:
    """Run the simulation-serving daemon until interrupted or drained."""
    import asyncio

    from repro.service.protocol import resolve_endpoint
    from repro.service.server import SimulationServer

    server = SimulationServer(
        endpoint=resolve_endpoint(args.socket),
        spool=args.spool,
        jobs=args.jobs,
        queue_max=args.queue_max,
        tenant_max=args.tenant_max,
        fast=args.fast,
        node_id=args.node_id,
        join=args.join,
    )

    async def _serve():
        await server.start()
        role = (f"worker {server.node_id} joined to {server.join}"
                if server.join else "head")
        print(f"serving on {server.endpoint} with {server.jobs} worker(s) "
              f"({role}); spool {server.spool}")
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted; server stopped", file=sys.stderr)
    return 0


def cmd_pareto(args) -> int:
    """Surrogate-price a cache x queue grid; emit the verified frontier."""
    import time

    from repro.errors import ReproError
    from repro.experiments import clear_failures, default_context
    from repro.surrogate import render_pareto_svg, run_pareto

    clear_failures()
    started = time.time()
    context = default_context(fast=args.fast)
    kwargs = dict(
        policy=args.policy,
        baseline_policy=args.baseline,
        cache_axis=args.cache_axis,
        queue_axis=args.queue_axis,
        cache_values=args.cache_values,
        queue_values=args.queue_values,
        cache_count=args.cache_count,
        queue_count=args.queue_count,
        error_bound=args.bound,
        exact_budget=args.exact_budget,
        frontier_epsilon=args.epsilon,
        seed=args.seed,
        jobs=args.jobs,
    )
    if args.exact_fraction is not None:
        kwargs["exact_fraction"] = args.exact_fraction
    try:
        result = run_pareto(args.scene, context, **kwargs)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    payload = result.payload
    out = args.output or f"{args.scene.lower()}_pareto.json"
    result.write(out)
    svg = args.svg
    if svg is None:
        svg = (out[:-len(".json")] if out.endswith(".json") else out) + ".svg"
    with open(svg, "w") as handle:
        handle.write(render_pareto_svg(result))

    err = payload["surrogate_error"]
    exact = payload["exact_runs"]
    print(f"{payload['scene']}/{payload['policy']}: priced "
          f"{payload['grid']['size']} grid points with {exact['total']} "
          f"exact runs ({payload['exact_fraction']:.1%}: "
          f"{exact['replay']} replay, {exact['live']} live)")
    heldout = err["policy_final_heldout"].get("cycles", 0.0)
    print(f"held-out cycle error {heldout:.1%}, frontier verification max "
          f"{err['frontier_verification']['max']:.1%} "
          f"(bound {err['bound']:.0%} "
          + ("met)" if err["bound_met"] else "NOT met)"))
    print(f"{'cache':>12s} {'queue':>7s} {'cycles':>14s} "
          f"{'speedup':>8s} {'vs ref':>7s} {'kind':>6s}")
    for row in payload["frontier"]:
        print(f"{row['cache']:12,.0f} {row['queue']:7g} "
              f"{row['cycles']:14,.0f} {row['speedup']:7.2f}x "
              f"{row['speedup_vs_ref']:6.2f}x {row['kind']:>6s}")
    print(f"wrote {out} and {svg}")
    if args.manifest:
        _write_run_manifest(
            args.manifest, started,
            {
                "scene": args.scene,
                "policy": args.policy,
                "baseline_policy": args.baseline,
                "cache_axis": args.cache_axis,
                "queue_axis": args.queue_axis,
                "error_bound": args.bound,
                "frontier_epsilon": args.epsilon,
                "seed": args.seed,
                "fast": args.fast,
            },
            outputs={"json": out, "svg": svg},
            surrogate_error=err,
        )
    if args.strict and not err["bound_met"]:
        return 3
    return 0


def _service_client(args):
    from repro.service.client import ServiceClient

    return ServiceClient(endpoint=args.socket)


def cmd_submit(args) -> int:
    """Submit one case — or a figure's whole case list — to the server."""
    from repro.errors import ReproError
    from repro.service.jobs import FAILED

    client = _service_client(args)
    try:
        if args.figure:
            from repro.experiments import default_context
            from repro.experiments.parallel import cases_for_figure

            if args.figure not in _figures():
                print(f"unknown figure {args.figure!r}; choose from: "
                      + ", ".join(sorted(_figures())), file=sys.stderr)
                return 2
            specs = cases_for_figure(
                args.figure, default_context(fast=args.fast)
            )
        else:
            if not args.scene:
                print("submit needs a SCENE or --figure NAME", file=sys.stderr)
                return 2
            from repro.experiments.parallel import CaseSpec
            from repro.memtrace import normalize_overrides

            overrides = normalize_overrides(_parse_overrides(args.set)) or None
            specs = [CaseSpec(args.scene.upper(), args.policy,
                              gpu_overrides=overrides)]
        if args.replay and args.pareto:
            print("--replay and --pareto are mutually exclusive",
                  file=sys.stderr)
            return 2
        params = None
        if args.params is not None:
            if not args.pareto:
                print("--params needs --pareto", file=sys.stderr)
                return 2
            import json as json_mod

            params = json_mod.loads(args.params)
        kind = "pareto" if args.pareto else (
            "replay" if args.replay else "case"
        )
        job_ids = []
        if args.batch:
            # One round trip for the whole list; admission is per item.
            from dataclasses import asdict as dc_asdict

            items = []
            for spec in specs:
                items.append({
                    "scene": spec.scene,
                    "policy": spec.policy,
                    "vtq": dc_asdict(spec.vtq) if spec.vtq is not None else None,
                    "gpu_overrides": (
                        [list(pair) for pair in spec.gpu_overrides]
                        if spec.gpu_overrides else None
                    ),
                    "params": params,
                })
            outcomes = client.submit_batch(
                items,
                client_id=args.client,
                tenant=args.tenant,
                priority=args.priority,
                deadline_s=args.deadline,
                kind=kind,
            )
            rejected = 0
            for spec, outcome in zip(specs, outcomes):
                if outcome.get("ok"):
                    job_ids.append(str(outcome["job_id"]))
                    dedup = "  (deduped)" if outcome.get("deduped") else ""
                    print(f"submitted {outcome['job_id']}  "
                          f"{spec.label()}{dedup}")
                else:
                    rejected += 1
                    print(f"rejected  {spec.label()}: "
                          f"{outcome.get('reason')}: {outcome.get('error')}",
                          file=sys.stderr)
            if rejected and not args.wait:
                return 1
        else:
            for spec in specs:
                kwargs = dict(
                    priority=args.priority,
                    deadline_s=args.deadline,
                    client_id=args.client,
                    kind=kind,
                    params=params,
                    tenant=args.tenant,
                )
                if args.admit_wait > 0:
                    # Wait out retryable rejections (queue-full/quota/
                    # circuit-open), honoring the server's retry_after_s
                    # hint.
                    job_id = client.submit_admitted(
                        spec, max_wait_s=args.admit_wait, **kwargs
                    )
                else:
                    job_id = client.submit_spec(spec, **kwargs)
                job_ids.append(job_id)
                print(f"submitted {job_id}  {spec.label()}")
        if args.wait:
            records = client.wait(job_ids, timeout=args.timeout)
            failed = [r for r in records if r["state"] != "done"]
            for record in records:
                state = record["state"]
                tail = ""
                if state == FAILED and record.get("error"):
                    tail = f"  [{record['error']['type']}]"
                elif state == "done":
                    cycles = (record.get("result") or {}).get("cycles")
                    if cycles is not None:
                        tail = f"  {cycles:,.0f} cycles"
                print(f"{record['job_id']}  {state}{tail}")
            return 1 if failed else 0
    except (ReproError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def cmd_jobs(args) -> int:
    """Show server health and the job listing (optionally one record)."""
    from repro.errors import ReproError

    client = _service_client(args)
    try:
        health = client.health()
        counts = " ".join(
            f"{state}={count}"
            for state, count in sorted(health["states"].items()) if count
        )
        print(f"queue depth {health['queue_depth']}, "
              f"running {health['running']}, "
              f"cache hit rate {health['cache']['hit_rate']:.2f}"
              + (f" ({counts})" if counts else " (no jobs)"))
        if args.job_id:
            record = client.result(args.job_id)
            print(f"\n{record['job_id']}: {record['state']}")
            for key in ("client_id", "priority", "deadline_s", "attempts",
                        "dispatch_index", "error"):
                if record.get(key) not in (None, 0):
                    print(f"  {key}: {record[key]}")
            if record.get("result"):
                cycles = record["result"].get("cycles")
                if cycles is not None:
                    print(f"  cycles: {cycles:,.0f}")
                elif record["result"].get("frontier") is not None:
                    # A pareto job's result is the whole sweep payload.
                    front = record["result"]["frontier"]
                    err = record["result"].get("surrogate_error", {})
                    print(f"  frontier: {len(front)} points, bound_met="
                          f"{err.get('bound_met')}")
            return 0
        summaries = client.jobs(state=args.state)
        if summaries:
            print(f"\n{'job':12s} {'state':10s} {'kind':6s} {'case':18s} "
                  f"{'client':10s} {'prio':>4s} {'try':>3s} {'order':>5s}")
            for row in summaries:
                order = row["dispatch_index"]
                print(f"{row['job_id']:12s} {row['state']:10s} "
                      f"{row.get('kind', 'case'):6s} "
                      f"{row['scene'] + '/' + row['policy']:18s} "
                      f"{row['client_id']:10s} {row['priority']:4d} "
                      f"{row['attempts']:3d} {'-' if order is None else order:>5} "
                      + (f" [{row['error']}]" if row["error"] else ""))
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def cmd_fleet(args) -> int:
    """Show the head server's worker-node registry and routing."""
    from repro.errors import ReproError

    client = _service_client(args)
    try:
        response = client.request({"op": "nodes"})
        nodes = response["nodes"]
        mode = "fleet" if response.get("fleet_mode") else "local"
        print(f"{len(nodes)} node(s) registered ({mode} execution), "
              f"shard hit rate {response.get('shard_hit_rate', 1.0):.2f}")
        if nodes:
            print(f"\n{'node':16s} {'endpoint':22s} {'live':5s} "
                  f"{'slots':>5s} {'sent':>6s} {'fail':>5s} {'age':>6s}")
            for node in nodes:
                print(f"{node['node_id']:16s} {node['endpoint']:22s} "
                      f"{'yes' if node['live'] else 'NO':5s} "
                      f"{node['slots']:5d} {node['dispatched']:6d} "
                      f"{node['failures']:5d} {node['age_s']:5.1f}s")
        if args.route:
            routed = client.route(args.route.upper())
            print(f"\n{routed['scene']} -> {routed['node_id']} "
                  f"({routed['endpoint']})")
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def cmd_cancel(args) -> int:
    from repro.errors import ReproError

    client = _service_client(args)
    try:
        response = client.cancel(args.job_id)
        print(f"{args.job_id}: {response['state']}")
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def cmd_chaos(args) -> int:
    """Run the deterministic chaos harness against a real sweep."""
    import json as json_mod

    from repro.errors import ReproError
    from repro.experiments import default_context
    from repro.experiments.parallel import CaseSpec, cases_for_figure
    from repro.resilience import run_chaos_sweep

    context = default_context(fast=args.fast)
    try:
        if args.figure:
            if args.figure not in _figures():
                print(f"unknown figure {args.figure!r}; choose from: "
                      + ", ".join(sorted(_figures())), file=sys.stderr)
                return 2
            specs = cases_for_figure(args.figure, context)
        else:
            specs = [
                CaseSpec(scene, policy)
                for scene in context.scenes()
                for policy in ("baseline", "prefetch")
            ]
        report = run_chaos_sweep(
            specs,
            context,
            seed=args.seed,
            jobs=args.jobs,
            hang_timeout_s=args.hang_timeout,
        )
    except (ReproError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json_mod.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
        for line in report.schedule:
            print(f"  scheduled: {line}")
        for site, key in report.fired:
            print(f"  fired: {site} [{key}]")
        for problem in report.untyped_failures + report.mismatched:
            print(f"  INVARIANT VIOLATION: {problem}")
    return 0 if report.ok else 1


def _jobs_arg(value: str) -> int:
    """``--jobs`` values: any non-negative int; 0 = serial, no pool."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"--jobs must be an integer, got {value!r}")
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0 (0 = serial, no pool), got {jobs}"
        )
    return jobs


def _values_arg(text: str) -> List[float]:
    """Comma-separated positive floats (``--cache-values``/``--queue-values``)."""
    try:
        values = [float(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {text!r}"
        )
    if not values or any(v <= 0 for v in values):
        raise argparse.ArgumentTypeError(
            f"expected a non-empty list of positive numbers, got {text!r}"
        )
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Treelet Accelerated Ray Tracing on GPUs'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("scenes", help="list the evaluation scenes")
    p.add_argument("--all", action="store_true", help="include WKND/SHIP")
    p.set_defaults(func=cmd_scenes)

    p = sub.add_parser("render", help="render one scene")
    p.add_argument("scene",
                   choices=scene_names(include_extra=True, include_gaussian=True))
    p.add_argument("--policy", default="vtq",
                   choices=("baseline", "prefetch", "vtq"))
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--sanitize", action="store_true",
                   help="run the simulation-state sanitizer on the result")
    p.add_argument("--record-trace", default=None, metavar="PATH",
                   help="also record the run's memory trace to PATH "
                        "(replayable with `repro trace replay`; distinct "
                        "from --trace-out's chrome timeline)")
    p.set_defaults(func=cmd_render)

    p = sub.add_parser("compare", help="render one scene under every policy")
    p.add_argument("scene",
                   choices=scene_names(include_extra=True, include_gaussian=True))
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("figure", help="regenerate one paper figure")
    p.add_argument("name")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--strict", action="store_true",
                   help="exit with status 3 if any case was quarantined")
    p.add_argument("--jobs", type=_jobs_arg, default=None,
                   help="parallel sweep workers (default: REPRO_JOBS or CPU "
                        "count; 0 = serial, no pool)")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="also write a chrome activity timeline of one "
                        "representative case to PATH (for chrome://tracing; "
                        "not a replayable memory trace — see `repro trace`)")
    p.add_argument("--manifest", default=None, metavar="PATH",
                   help="also write a run manifest (config + git rev + "
                        "timings + metrics) to PATH")
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("report", help="regenerate every figure")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--strict", action="store_true",
                   help="exit with status 3 if any case was quarantined")
    p.add_argument("--jobs", type=_jobs_arg, default=None,
                   help="parallel sweep workers (default: REPRO_JOBS or CPU "
                        "count; 0 = serial, no pool)")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="also write a chrome activity timeline of one "
                        "representative case to PATH (for chrome://tracing; "
                        "not a replayable memory trace — see `repro trace`)")
    p.add_argument("--manifest", default=None, metavar="PATH",
                   help="also write a run manifest (config + git rev + "
                        "timings + metrics) to PATH")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("export", help="write one figure to CSV/JSON/text")
    p.add_argument("name")
    p.add_argument("output", help="path; .csv / .json / anything-else=text")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--no-manifest", action="store_true",
                   help="skip the sibling <output>.manifest.json")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("sweep", help="sweep a design parameter on one scene")
    p.add_argument("target", choices=("vtq", "gpu"))
    p.add_argument("param", help="e.g. queue_threshold or l1_bytes")
    p.add_argument("values", help="comma-separated, e.g. 8,32,128")
    p.add_argument("--scene", default="SPNZA",
                   choices=scene_names(include_extra=True))
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "pareto",
        help="surrogate-price a cache x queue grid; verified Pareto frontier",
    )
    p.add_argument("scene", choices=scene_names(include_extra=True))
    p.add_argument("--policy", default="vtq",
                   choices=("baseline", "prefetch", "sorted", "vtq"))
    p.add_argument("--baseline", default="baseline", metavar="POLICY",
                   choices=("baseline", "prefetch", "sorted", "vtq"),
                   help="denominator policy for the speedup axis")
    p.add_argument("--cache-axis", default="l2_bytes", metavar="FIELD",
                   help="GPUConfig cost axis (default l2_bytes)")
    p.add_argument("--queue-axis", default="queue_threshold", metavar="FIELD",
                   help="VTQ/GPU tuning axis (default queue_threshold)")
    p.add_argument("--cache-values", type=_values_arg, default=None,
                   metavar="V1,V2,...",
                   help="explicit cache-axis values (default: geometric "
                        "series around the stock config)")
    p.add_argument("--queue-values", type=_values_arg, default=None,
                   metavar="V1,V2,...",
                   help="explicit queue-axis values")
    p.add_argument("--cache-count", type=int, default=8,
                   help="generated cache-axis points when --cache-values "
                        "is not given")
    p.add_argument("--queue-count", type=int, default=6,
                   help="generated queue-axis points when --queue-values "
                        "is not given")
    p.add_argument("--bound", type=float, default=0.10, metavar="REL",
                   help="held-out relative cycle error bound of the "
                        "verification contract (default 0.10)")
    p.add_argument("--exact-fraction", type=float, default=None,
                   metavar="FRAC",
                   help="exact-run budget as a fraction of the grid "
                        "(default 0.05)")
    p.add_argument("--exact-budget", type=int, default=None, metavar="N",
                   help="absolute exact-run budget (overrides the fraction)")
    p.add_argument("--epsilon", type=float, default=0.02, metavar="REL",
                   help="frontier pruning: keep a costlier point only if "
                        "it gains at least this much (default 0.02)")
    p.add_argument("--seed", type=int, default=0,
                   help="sweep seed (same seed, byte-identical JSON)")
    p.add_argument("--fast", action="store_true",
                   help="run under the fast (tests/CI) context")
    p.add_argument("--jobs", type=_jobs_arg, default=None,
                   help="parallel workers for exact runs (default: "
                        "REPRO_JOBS or CPU count; 0 = serial)")
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="frontier JSON (default <scene>_pareto.json)")
    p.add_argument("--svg", default=None, metavar="PATH",
                   help="frontier figure (default: next to the JSON)")
    p.add_argument("--manifest", default=None, metavar="PATH",
                   help="also write a run manifest carrying the achieved "
                        "surrogate_error statistics")
    p.add_argument("--strict", action="store_true",
                   help="exit with status 3 if the error bound was not met")
    p.set_defaults(func=cmd_pareto)

    p = sub.add_parser(
        "trace", help="record, replay or inspect memory traces"
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)

    tp = tsub.add_parser(
        "record",
        help="run one case live with memory-trace capture on",
    )
    tp.add_argument("scene",
                    choices=scene_names(include_extra=True, include_gaussian=True))
    tp.add_argument("--policy", default="baseline",
                    choices=("baseline", "prefetch", "vtq"))
    tp.add_argument("-o", "--output", default=None, metavar="PATH",
                    help="trace file (default <scene>_<policy>.memtrace)")
    tp.add_argument("--fast", action="store_true",
                    help="record under the fast (tests/CI) context")
    tp.add_argument("--allow-partial", action="store_true",
                    help="keep a budget-truncated trace instead of failing "
                         "(replay will refuse it; see "
                         "REPRO_TRACE_BUDGET_BYTES)")
    tp.set_defaults(trace_func=cmd_trace_record)

    tp = tsub.add_parser(
        "replay",
        help="re-price a recorded trace through the memory hierarchy",
    )
    tp.add_argument("path", help="a .memtrace file (see `trace record`)")
    tp.add_argument("--set", action="append", default=[], metavar="FIELD=VALUE",
                    help="override a replay-safe GPUConfig field (repeatable), "
                         "e.g. --set l2_bytes=4194304")
    tp.set_defaults(trace_func=cmd_trace_replay)

    tp = tsub.add_parser(
        "info",
        help="identify a trace file (memory trace vs chrome timeline)",
    )
    tp.add_argument("path")
    tp.add_argument("--format", choices=("text", "json"), default="text")
    tp.set_defaults(trace_func=cmd_trace_info)

    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("serve", help="run the simulation-serving daemon")
    p.add_argument("--socket", default=None, metavar="PATH|HOST:PORT",
                   help="endpoint (default: REPRO_SERVICE_* or spool socket)")
    p.add_argument("--spool", default=None, metavar="DIR",
                   help="job spool directory (default: REPRO_SERVICE_SPOOL)")
    p.add_argument("--jobs", type=_jobs_arg, default=None,
                   help="worker pool size (0 = serial, no pool)")
    p.add_argument("--queue-max", type=int, default=None,
                   help="queue depth bound (default REPRO_SERVICE_QUEUE_MAX)")
    p.add_argument("--tenant-max", type=int, default=None,
                   help="per-tenant queued-job quota "
                        "(default REPRO_SERVICE_TENANT_MAX; 0 = unlimited)")
    p.add_argument("--join", default=None, metavar="HOST:PORT",
                   help="run as a worker node: register with this head "
                        "server and heartbeat (needs a TCP --socket)")
    p.add_argument("--node-id", default=None, metavar="ID",
                   help="worker node id for --join (default node-<pid>)")
    p.add_argument("--fast", action="store_true",
                   help="serve the fast two-scene context (tests/CI)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit work to a running server")
    p.add_argument("scene", nargs="?", default=None,
                   help="scene name (or use --figure)")
    p.add_argument("--figure", default=None, metavar="NAME",
                   help="submit every simulator case of one figure")
    p.add_argument("--policy", default="vtq",
                   choices=("baseline", "prefetch", "sorted", "vtq"))
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="per-job wall-clock deadline from submission")
    p.add_argument("--client", default=None, metavar="ID",
                   help="client id for queue fairness accounting")
    p.add_argument("--tenant", default=None, metavar="NAME",
                   help="tenant bucket for quota accounting "
                        "(default public)")
    p.add_argument("--batch", action="store_true",
                   help="submit everything in one batch round trip with "
                        "per-item admission outcomes (best with --figure)")
    p.add_argument("--set", action="append", default=[], metavar="FIELD=VALUE",
                   help="GPUConfig override for this case (repeatable)")
    p.add_argument("--replay", action="store_true",
                   help="submit as a replay job: the server admits it only "
                        "if (policy, --set overrides) is replay-eligible, "
                        "then serves it from a recorded memory trace")
    p.add_argument("--pareto", action="store_true",
                   help="submit as a pareto job: the server runs a whole "
                        "surrogate-priced frontier sweep for SCENE/--policy "
                        "(see `repro pareto` for the local equivalent)")
    p.add_argument("--params", default=None, metavar="JSON",
                   help="pareto sweep parameters as a JSON object, e.g. "
                        "'{\"queue_count\": 4, \"seed\": 7}' (with --pareto)")
    p.add_argument("--fast", action="store_true",
                   help="enumerate --figure cases under the fast context "
                        "(must match the server's)")
    p.add_argument("--wait", action="store_true",
                   help="poll until every submitted job is terminal")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait timeout in seconds")
    p.add_argument("--admit-wait", type=float, default=0.0, metavar="SECONDS",
                   help="retry retryable rejections (queue-full/quota/"
                        "circuit-open) for up to this long, honoring the "
                        "server's retry_after_s hint (0 = single-shot)")
    p.add_argument("--socket", default=None, metavar="PATH|HOST:PORT")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "chaos",
        help="run a sweep under seeded process-level faults and check the "
             "resilience invariants",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="fault-schedule seed (same seed, same kills/hangs)")
    p.add_argument("--figure", default=None, metavar="NAME",
                   help="chaos-test one figure's case list (default: every "
                        "scene under baseline+prefetch)")
    p.add_argument("--jobs", type=_jobs_arg, default=2,
                   help="supervised worker count for the chaos run (min 2)")
    p.add_argument("--hang-timeout", type=float, default=2.0,
                   metavar="SECONDS",
                   help="supervisor hang-detection timeout for the chaos run")
    p.add_argument("--fast", action="store_true",
                   help="use the fast two-scene context (tests/CI)")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("jobs", help="show server health and job records")
    p.add_argument("job_id", nargs="?", default=None,
                   help="show this one job's full record instead")
    p.add_argument("--state", default=None,
                   choices=("queued", "running", "done", "failed", "cancelled"),
                   help="filter the listing by lifecycle state")
    p.add_argument("--socket", default=None, metavar="PATH|HOST:PORT")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser("cancel", help="cancel a queued job")
    p.add_argument("job_id")
    p.add_argument("--socket", default=None, metavar="PATH|HOST:PORT")
    p.set_defaults(func=cmd_cancel)

    p = sub.add_parser(
        "fleet", help="show the head server's worker-node registry"
    )
    p.add_argument("--route", default=None, metavar="SCENE",
                   help="also show which node this scene would route to")
    p.add_argument("--socket", default=None, metavar="PATH|HOST:PORT")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "stats", help="render metrics: a live server, or a finished run"
    )
    p.add_argument("source", nargs="?", default=None,
                   help="run manifest or metrics-snapshot JSON file; omit "
                        "to scrape a running server")
    p.add_argument("--format", choices=("text", "json", "prom"),
                   default="text",
                   help="text summary, raw JSON snapshot, or Prometheus "
                        "exposition text (default: text)")
    p.add_argument("--socket", default=None, metavar="PATH|HOST:PORT")
    p.set_defaults(func=cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
