"""Per-case execution budgets: wall-clock and simulated-cycle watchdogs.

A runaway case (a pathological scene/config combination, or a fault
injected on purpose) must not take a whole sweep down with it.  Two
independent bounds apply to every case the experiment runner executes:

* a **simulated-cycle budget**, checked cooperatively by every RT-unit
  engine at each scheduling round, and
* a **wall-clock budget**, enforced by a SIGALRM timer around the render.
  Where SIGALRM cannot fire — worker threads, or platforms without the
  signal — the watchdog arms a cooperative ``time.monotonic()`` deadline
  instead, checked piggyback on the same per-scheduling-round hook as the
  cycle budget, so parallel sweep workers get wall-clock protection too
  (coarser: it only trips between scheduling rounds).

Both raise :class:`repro.errors.BudgetExceeded` carrying whatever
partial statistics were gathered, so a sweep can quarantine the case and
still report how far it got.  Budgets default to *off*; the environment
variables ``REPRO_WALL_BUDGET_S`` and ``REPRO_CYCLE_BUDGET`` switch them
on globally.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional

from repro.errors import BudgetExceeded
from repro.gpusim.stats import SimStats


@dataclass(frozen=True)
class CaseBudget:
    """Limits for one experiment case; ``None`` disables a bound."""

    wall_seconds: Optional[float] = None
    max_cycles: Optional[float] = None

    def __post_init__(self):
        for name in ("wall_seconds", "max_cycles"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a positive number, got {raw!r}"
        ) from None


def budget_from_env() -> Optional[CaseBudget]:
    """The globally-configured budget, or ``None`` when unset."""
    wall = _env_float("REPRO_WALL_BUDGET_S")
    cycles = _env_float("REPRO_CYCLE_BUDGET")
    if wall is None and cycles is None:
        return None
    return CaseBudget(wall_seconds=wall, max_cycles=cycles)


def merge_wall_budget(
    budget: Optional[CaseBudget], wall_seconds: float
) -> CaseBudget:
    """Tighten ``budget``'s wall-clock bound to at most ``wall_seconds``.

    The serving layer uses this to propagate a job's remaining deadline
    into the per-case watchdogs: the job runs under the *stricter* of the
    ambient budget and its own deadline.  ``wall_seconds`` must be
    positive (an already-expired deadline is the caller's fast path).
    """
    if wall_seconds <= 0:
        raise ValueError("wall_seconds must be positive")
    if budget is None:
        return CaseBudget(wall_seconds=wall_seconds)
    if budget.wall_seconds is None or wall_seconds < budget.wall_seconds:
        return replace(budget, wall_seconds=wall_seconds)
    return budget


def partial_stats(stats: SimStats, cycle: float) -> Dict:
    """The progress snapshot a :class:`BudgetExceeded` carries."""
    return {
        "cycles": cycle,
        "rays_traced": stats.rays_traced,
        "rays_completed": stats.rays_completed,
        "warps_processed": stats.warps_processed,
        "node_visits": stats.node_visits,
        "triangle_tests": stats.triangle_tests,
    }


# Cooperative wall-clock deadline for contexts where SIGALRM cannot fire
# (worker threads; platforms without the signal).  Thread-local so budgets
# in concurrent sweep workers never trip each other.
_cooperative = threading.local()


def _cooperative_deadline() -> Optional[tuple]:
    return getattr(_cooperative, "deadline", None)


def check_cycle_budget(
    cycle: float, limit: Optional[float], stats: SimStats
) -> None:
    """Raise :class:`BudgetExceeded` on cycle or cooperative-wall overrun.

    Called by every engine once per scheduling round, which makes it the
    natural carrier for the cooperative wall-clock deadline: when
    :func:`wall_clock_watchdog` could not arm SIGALRM it arms a monotonic
    deadline instead, and this hook trips it.
    """
    if limit is not None and cycle > limit:
        raise BudgetExceeded(
            f"simulated cycles {cycle:,.0f} exceed budget {limit:,.0f}",
            kind="cycles",
            limit=limit,
            observed=cycle,
            partial=partial_stats(stats, cycle),
        )
    armed = _cooperative_deadline()
    if armed is not None:
        deadline, seconds, describe = armed
        if time.monotonic() > deadline:
            raise BudgetExceeded(
                f"wall clock exceeded {seconds:g}s"
                + (f" while running {describe}" if describe else ""),
                kind="wall",
                limit=seconds,
                partial=partial_stats(stats, cycle),
            )


@contextmanager
def wall_clock_watchdog(seconds: Optional[float], describe: str = "") -> Iterator[None]:
    """Bound a block's wall-clock time.

    Uses a ``SIGALRM`` timer when available (main thread, platform with
    the signal); elsewhere it arms a cooperative ``time.monotonic()``
    deadline that :func:`check_cycle_budget` trips at the next scheduling
    round.  A no-op only when ``seconds`` is ``None``.
    """
    if seconds is None:
        yield
        return
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        previous = _cooperative_deadline()
        _cooperative.deadline = (time.monotonic() + seconds, seconds, describe)
        try:
            yield
        finally:
            _cooperative.deadline = previous
        return

    def _on_alarm(signum, frame):
        raise BudgetExceeded(
            f"wall clock exceeded {seconds:g}s"
            + (f" while running {describe}" if describe else ""),
            kind="wall",
            limit=seconds,
            partial={"case": describe} if describe else {},
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
