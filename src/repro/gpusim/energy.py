"""Per-event energy accounting (the reproduction's AccelWattch stand-in).

Figure 17 reports *relative* energy (baseline vs treelet queues with and
without ray virtualization), so what matters is the relative cost of the
event classes, not absolute joules.  The constants below use CACTI-class
ratios for a ~16 nm node: an L2 access costs several L1 accesses, a DRAM
access costs an order of magnitude more than L2, and fixed-function
intersection tests are cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.gpusim.stats import SimStats

# Relative energy per event (arbitrary units, think picojoules per 32B).
ENERGY_COSTS: Dict[str, float] = {
    "l1_access": 1.0,
    "l2_access": 6.0,
    "dram_line": 64.0,
    "intersection_test": 0.4,
    "node_visit": 0.3,       # traversal pipeline / stack management
    "ray_data_record": 6.0,  # ray record moved through the reserved L2
    "queue_op": 0.2,         # treelet count/queue table update
    # Static leakage plus clock/pipeline power per SM-cycle.  AccelWattch
    # attributes most of a memory-bound kernel's energy to time-
    # proportional terms, which is why the paper's 60% energy saving
    # tracks its ~2x cycle reduction ("primarily from the reduced cycles
    # needed to complete the ray traversal").
    "sm_cycle": 16.0,
}


@dataclass
class EnergyBreakdown:
    """Energy per component, in the relative units of ``ENERGY_COSTS``."""

    l1: float = 0.0
    l2: float = 0.0
    dram: float = 0.0
    intersection: float = 0.0
    traversal: float = 0.0
    ray_data: float = 0.0
    cta_state: float = 0.0
    queues: float = 0.0
    static: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.l1 + self.l2 + self.dram + self.intersection
            + self.traversal + self.ray_data + self.cta_state + self.queues
            + self.static
        )

    @property
    def virtualization(self) -> float:
        """Energy attributable to ray virtualization (Figure 17's slice)."""
        return self.cta_state

    def as_dict(self) -> Dict[str, float]:
        return {
            "l1": self.l1,
            "l2": self.l2,
            "dram": self.dram,
            "intersection": self.intersection,
            "traversal": self.traversal,
            "ray_data": self.ray_data,
            "cta_state": self.cta_state,
            "queues": self.queues,
            "static": self.static,
            "total": self.total,
        }


class EnergyModel:
    """Derives an :class:`EnergyBreakdown` from a run's :class:`SimStats`."""

    def __init__(self, costs: Dict[str, float] = None):
        self.costs = dict(ENERGY_COSTS if costs is None else costs)

    def compute(
        self, stats: SimStats, line_bytes: int = 32, sm_cycles: float = None
    ) -> EnergyBreakdown:
        """Energy for one run.

        ``sm_cycles`` is the summed per-SM busy time (static/clock power
        accrues per SM per cycle); when omitted it falls back to the
        stats' total-cycle figure.
        """
        costs = self.costs
        out = EnergyBreakdown()

        l1_accesses = sum(
            count for (level, _), count in stats.cache_accesses.items() if level == "l1"
        )
        l2_accesses = sum(
            count
            for (level, kind), count in stats.cache_accesses.items()
            if level == "l2" and kind != "ray_data"
        )
        out.l1 = l1_accesses * costs["l1_access"]
        out.l2 = l2_accesses * costs["l2_access"]

        # CTA state is separated out of DRAM so Figure 17 can show the
        # virtualization slice.
        cta_lines = stats.dram_accesses.get("cta_state", 0)
        dram_lines = sum(stats.dram_accesses.values()) - cta_lines
        out.dram = dram_lines * costs["dram_line"]
        out.cta_state = cta_lines * costs["dram_line"]

        out.intersection = stats.triangle_tests * costs["intersection_test"]
        out.traversal = (stats.node_visits + stats.leaf_visits) * costs["node_visit"]

        ray_records = stats.traffic_bytes.get("ray_data", 0) / 32.0
        out.ray_data = ray_records * costs["ray_data_record"]

        queue_ops = stats.cache_accesses.get(("l2", "ray_data"), 0)
        out.queues = queue_ops * costs["queue_op"]

        if sm_cycles is None:
            sm_cycles = stats.total_cycles
        out.static = sm_cycles * costs["sm_cycle"]
        return out
