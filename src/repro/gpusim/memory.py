"""The memory hierarchy seen by one SM's RT unit.

Each SM owns a private L1; all SMs share one L2 (pass the same ``Cache``
object to every SM's ``MemorySystem``).  SM timelines are simulated
independently, so the shared L2 observes accesses in an interleaving that
is not globally time-ordered — this is a standard scale-model approximation
and only perturbs L2 hit rates, not the L1-level effects the paper's
mechanisms target.

Access rules (Sections 4.2-4.3 of the paper):

* BVH accesses go L1 -> L2 -> DRAM, allocating on the way back.
* Ray-data accesses **bypass the L1** ("to avoid evicting treelet data")
  and live in a reserved L2 region sized for the virtual-ray population;
  rays beyond the reserve spill to DRAM.
* CTA state (ray virtualization save/restore) streams to/from DRAM.
* Treelet fetches are bursts: one DRAM round trip plus a per-line
  transfer cost, filling the L1 directly.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Iterable, Optional, Tuple

from repro.gpusim.cache import Cache
from repro.gpusim.config import GPUConfig
from repro.gpusim.stats import SimStats


class AccessKind(enum.Enum):
    """What a memory transaction is for (drives routing and statistics)."""

    BVH = "bvh"
    RAY_DATA = "ray_data"
    CTA_STATE = "cta_state"
    QUEUE_TABLE = "queue_table"


class MemorySystem:
    """One SM's view of the memory hierarchy."""

    def __init__(
        self,
        config: GPUConfig,
        stats: SimStats,
        shared_l2: Optional[Cache] = None,
    ):
        self.config = config
        self.stats = stats
        self.l1 = Cache("l1", config.l1_bytes, config.line_bytes, config.l1_assoc)
        if shared_l2 is not None:
            self.l2 = shared_l2
        else:
            self.l2 = make_shared_l2(config)
        # Optional observer invoked on every L1 BVH demand miss (the
        # treelet prefetcher hangs off this).
        self.l1_miss_hook = None
        # Optional memory-trace recorder (repro.memtrace); the engines
        # check it at each emission point.  Purely observational.
        self.recorder = None
        # Optional banked DRAM model (per SM; see repro.gpusim.dram).
        if config.detailed_dram:
            from repro.gpusim.dram import DRAMModel

            self.dram = DRAMModel(config)
        else:
            self.dram = None

    def _dram_latency(self, line: int, cycle: float) -> float:
        if self.dram is not None:
            return self.dram.access(line, cycle)
        return float(self.config.dram_latency)

    # -- single-line access ------------------------------------------------------

    def access(self, line: int, kind: AccessKind, cycle: float) -> float:
        """One line-granular read; returns its latency in cycles."""
        config = self.config
        if kind is AccessKind.RAY_DATA:
            raise ValueError("use ray_data_access() for ray data")
        if kind is AccessKind.CTA_STATE:
            self.stats.traffic_bytes["dram"] += config.line_bytes
            self.stats.dram_accesses[kind.value] += 1
            return float(config.dram_latency)

        hit_l1 = self.l1.lookup(line)
        self.stats.record_cache("l1", kind.value, hit_l1)
        if kind is AccessKind.BVH:
            self.stats.l1_bvh_timeline.record(cycle, hit_l1)
            if not hit_l1 and self.l1_miss_hook is not None:
                self.l1_miss_hook(line)
        if hit_l1:
            return float(config.l1_latency)

        hit_l2 = self.l2.lookup(line)
        self.stats.record_cache("l2", kind.value, hit_l2)
        self.l1.insert(line)
        self.stats.traffic_bytes["l2_to_l1"] += config.line_bytes
        if hit_l2:
            return float(config.l2_latency)

        self.l2.insert(line)
        self.stats.dram_accesses[kind.value] += 1
        self.stats.traffic_bytes["dram"] += config.line_bytes
        return self._dram_latency(line, cycle)

    def access_lines(
        self, lines: Iterable[int], kind: AccessKind, cycle: float
    ) -> Tuple[float, int]:
        """Access several lines of one item.

        The lines overlap in the memory system, so the latency is the max;
        the L1-miss count is returned alongside so the warp step can charge
        miss-port serialization across lanes.
        """
        latency = 0.0
        misses = 0
        for line in lines:
            line_latency = self.access(line, kind, cycle)
            if line_latency > self.config.l1_latency:
                misses += 1
            latency = max(latency, line_latency)
        return latency, misses

    def access_lines_batch(self, lane_lines, cycle: float, fold) -> Tuple[float, int, int]:
        """Batched BVH access path for the SoA replay engines.

        ``lane_lines`` is one line tuple per stepped lane (in lane order);
        ``fold`` is a :class:`repro.gpusim.stats.StatsFold` that absorbs
        the deferred counters.  Returns ``(max_latency, missing_lanes,
        misses)`` — exactly what :func:`repro.gpusim.warp.step_latency`
        needs.

        This inlines the L1/L2 probe-insert sequence of :meth:`access` for
        every line of every lane, preserving the *exact* order of cache
        mutations, miss-hook firings (the treelet prefetcher's demand-miss
        observer runs live, mid-batch, so its L1 insertions are visible to
        later lanes) and DRAM model calls.  Only the statistics writes are
        deferred — all integer counters, folded with presence-exact
        guards, so ``SimStats.snapshot()`` is bit-identical to the scalar
        path.  Not valid with a trace recorder attached (the engines fall
        back to scalar in that case).
        """
        config = self.config
        l1 = self.l1
        l2 = self.l2
        l1_sets = l1._sets
        l1_num_sets = l1.num_sets
        l1_assoc = l1.assoc
        l2_sets = l2._sets
        l2_num_sets = l2.num_sets
        l2_assoc = l2.assoc
        l1_lat = float(config.l1_latency)
        l2_lat = float(config.l2_latency)
        dram_lat = float(config.dram_latency)
        l1_threshold = config.l1_latency
        line_bytes = config.line_bytes
        hook = self.l1_miss_hook
        dram = self.dram

        fold.set_window(int(cycle // fold.window_cycles))

        # Per-call tallies.  Several of the counters the scalar path keeps
        # separately are arithmetically tied together, so only the
        # independent ones are counted in the loop and the rest derived
        # afterwards: every line is one L1 probe (``total``), every L1
        # miss is one L2 probe and one L2->L1 fill (``n_l1_miss``), and
        # every L2 miss is one L2 insertion and one DRAM access
        # (``dram_n``).
        total = 0
        n_l1_miss = 0
        l2_hit = 0
        dram_n = 0
        c1_ins = 0
        c1_ev = 0
        c2_ev = 0

        max_latency = 0.0
        missing_lanes = 0
        misses = 0
        if l1_num_sets == 1:
            # The common configuration: a fully-associative L1 has one
            # set, so its lookup hoists out of the loop entirely and the
            # hit path reduces to a membership test plus an LRU touch.
            s1 = l1_sets.get(0)
            if s1 is None:
                s1 = OrderedDict()
                l1_sets[0] = s1
            s1_move = s1.move_to_end
            for lines in lane_lines:
                # Every line costs at least the L1 hit latency; only
                # misses can raise the lane's latency above it.
                lane_latency = l1_lat if lines else 0.0
                lane_misses = 0
                total += len(lines)
                for line in lines:
                    if line in s1:
                        s1_move(line)
                        continue
                    n_l1_miss += 1
                    if hook is not None:
                        # May insert lines into the L1 (prefetch) — the
                        # membership re-check below mirrors Cache.insert.
                        hook(line)
                    idx2 = line % l2_num_sets
                    s2 = l2_sets.get(idx2)
                    if s2 is None:
                        s2 = OrderedDict()
                        l2_sets[idx2] = s2
                    if line in s2:
                        s2.move_to_end(line)
                        l2_hit += 1
                        hit_l2 = True
                    else:
                        hit_l2 = False
                    if line in s1:
                        s1_move(line)
                    else:
                        if len(s1) >= l1_assoc:
                            s1.popitem(last=False)
                            c1_ev += 1
                        s1[line] = True
                        c1_ins += 1
                    if hit_l2:
                        line_latency = l2_lat
                    else:
                        if len(s2) >= l2_assoc:
                            s2.popitem(last=False)
                            c2_ev += 1
                        s2[line] = True
                        dram_n += 1
                        line_latency = dram.access(line, cycle) if dram is not None else dram_lat
                    if line_latency > l1_threshold:
                        lane_misses += 1
                    if line_latency > lane_latency:
                        lane_latency = line_latency
                if lane_misses:
                    missing_lanes += 1
                    misses += lane_misses
                if lane_latency > max_latency:
                    max_latency = lane_latency
        else:
            for lines in lane_lines:
                lane_latency = l1_lat if lines else 0.0
                lane_misses = 0
                total += len(lines)
                for line in lines:
                    idx = line % l1_num_sets
                    s1 = l1_sets.get(idx)
                    if s1 is None:
                        s1 = OrderedDict()
                        l1_sets[idx] = s1
                    if line in s1:
                        s1.move_to_end(line)
                        continue
                    n_l1_miss += 1
                    if hook is not None:
                        hook(line)
                    idx2 = line % l2_num_sets
                    s2 = l2_sets.get(idx2)
                    if s2 is None:
                        s2 = OrderedDict()
                        l2_sets[idx2] = s2
                    if line in s2:
                        s2.move_to_end(line)
                        l2_hit += 1
                        hit_l2 = True
                    else:
                        hit_l2 = False
                    if line in s1:
                        s1.move_to_end(line)
                    else:
                        if len(s1) >= l1_assoc:
                            s1.popitem(last=False)
                            c1_ev += 1
                        s1[line] = True
                        c1_ins += 1
                    if hit_l2:
                        line_latency = l2_lat
                    else:
                        if len(s2) >= l2_assoc:
                            s2.popitem(last=False)
                            c2_ev += 1
                        s2[line] = True
                        dram_n += 1
                        line_latency = dram.access(line, cycle) if dram is not None else dram_lat
                    if line_latency > l1_threshold:
                        lane_misses += 1
                    if line_latency > lane_latency:
                        lane_latency = line_latency
                if lane_misses:
                    missing_lanes += 1
                    misses += lane_misses
                if lane_latency > max_latency:
                    max_latency = lane_latency

        # Commit the per-call tallies: Cache's own int counters directly
        # (nothing reads them mid-phase and integer addition commutes),
        # SimStats counters into the fold.
        l1_hit = total - n_l1_miss
        l1.accesses += total
        l1.hits += l1_hit
        l1.insertions += c1_ins
        l1.evictions += c1_ev
        l2.accesses += n_l1_miss
        l2.hits += l2_hit
        l2.insertions += dram_n
        l2.evictions += c2_ev
        fold.l1_acc += total
        fold.l1_hit += l1_hit
        fold.l2_acc += n_l1_miss
        fold.l2_hit += l2_hit
        fold.win_hits += l1_hit
        fold.win_misses += n_l1_miss
        fold.dram_n += dram_n
        fold.bytes_l2_to_l1 += line_bytes * n_l1_miss
        fold.bytes_dram += line_bytes * dram_n
        return max_latency, missing_lanes, misses

    # -- ray data ---------------------------------------------------------------

    def ray_data_access(self, ray_id: int, cycle: float, write: bool = False) -> float:
        """Load or store one ray record, bypassing the L1 (Section 4.2).

        The reserved L2 region holds one record per *live* ray slot; since
        live ray ids are recycled modulo the virtual-ray budget, a ray is
        in the reserve when its slot index fits the reserved capacity, and
        spills to DRAM otherwise ("also stored in memory if evicted").
        """
        config = self.config
        reserve_bytes = ray_data_reserve_bytes(config)
        capacity = reserve_bytes // config.ray_record_bytes
        self.stats.traffic_bytes["ray_data"] += config.ray_record_bytes
        slot = ray_id % max(config.max_virtual_rays_per_sm, 1)
        if slot < capacity:
            self.stats.record_cache("l2", AccessKind.RAY_DATA.value, True)
            return float(config.l2_latency)
        self.stats.record_cache("l2", AccessKind.RAY_DATA.value, False)
        self.stats.dram_accesses[AccessKind.RAY_DATA.value] += 1
        self.stats.traffic_bytes["dram"] += config.ray_record_bytes
        return float(config.dram_latency)

    # -- bursts ------------------------------------------------------------------

    def fetch_treelet(self, lines: Iterable[int], cycle: float) -> float:
        """Burst-fill a whole treelet into the L1 (Section 4.2, step 5).

        Only lines not already resident are transferred.  The burst costs
        one DRAM round trip plus a pipelined per-line transfer; lines found
        in the L2 cost an L2 round trip instead.
        """
        config = self.config
        missing = [line for line in lines if not self.l1.contains(line)]
        if not missing:
            return 0.0
        any_dram = False
        for line in missing:
            if self.l2.lookup(line):
                self.stats.record_cache("l2", AccessKind.BVH.value, True)
            else:
                self.stats.record_cache("l2", AccessKind.BVH.value, False)
                self.l2.insert(line)
                self.stats.dram_accesses[AccessKind.BVH.value] += 1
                self.stats.traffic_bytes["dram"] += config.line_bytes
                any_dram = True
        self.l1.insert_many(missing)
        self.stats.traffic_bytes["l2_to_l1"] += config.line_bytes * len(missing)
        self.stats.treelet_fetch_lines += len(missing)
        base = config.dram_latency if any_dram else config.l2_latency
        return float(base + config.dram_line_transfer * len(missing))

    def cta_state_transfer(self, num_bytes: int) -> float:
        """Stream a CTA's saved state to or from DRAM (Section 4.1).

        Returns the latency of the transfer: one round trip plus the
        pipelined line transfers.
        """
        config = self.config
        lines = (num_bytes + config.line_bytes - 1) // config.line_bytes
        self.stats.traffic_bytes["dram"] += lines * config.line_bytes
        self.stats.dram_accesses[AccessKind.CTA_STATE.value] += lines
        return float(config.dram_latency + config.dram_line_transfer * lines)


def ray_data_reserve_bytes(config: GPUConfig) -> int:
    """Actual L2 bytes reserved for ray data.

    The paper sizes the reserve for the full virtual-ray population (128 KB
    for 4096 rays); we additionally cap it at half the L2 so the normal
    cache keeps some capacity when the configured L2 is small.
    """
    return min(config.ray_data_reserved_bytes, config.l2_bytes // 2)


def make_shared_l2(config: GPUConfig) -> Cache:
    """The L2 shared by all SMs, with the ray-data reserve carved out."""
    return Cache(
        "l2",
        config.l2_bytes,
        config.line_bytes,
        config.l2_assoc,
        reserved_bytes=ray_data_reserve_bytes(config),
    )
