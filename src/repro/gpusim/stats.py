"""Statistics shared by all timing models.

``SimStats`` collects the quantities the paper's figures report:

* cache accesses / hits / misses per level, split by access kind;
* a *windowed timeline* of L1 BVH miss rates (Figure 11);
* SIMT-efficiency samples (Figures 1b, 13b);
* cycles and intersection tests attributed to each traversal mode
  (Figures 14, 15);
* traffic and event counts feeding the energy model (Figure 17).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class TraversalMode(enum.Enum):
    """The three phases of dynamic treelet queues (Section 3.2)."""

    INITIAL_RAY_STATIONARY = "initial_ray_stationary"
    TREELET_STATIONARY = "treelet_stationary"
    FINAL_RAY_STATIONARY = "final_ray_stationary"


@dataclass
class WindowedRate:
    """Accumulates (hit, miss) events into fixed-width cycle windows."""

    window_cycles: float = 5000.0
    hits: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    misses: Dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, cycle: float, hit: bool) -> None:
        window = int(cycle // self.window_cycles)
        if hit:
            self.hits[window] += 1
        else:
            self.misses[window] += 1

    def series(self) -> List[Tuple[float, float]]:
        """``(window_start_cycle, miss_rate)`` points in time order."""
        windows = sorted(set(self.hits) | set(self.misses))
        out = []
        for w in windows:
            h = self.hits[w]
            m = self.misses[w]
            if h + m:
                out.append((w * self.window_cycles, m / (h + m)))
        return out


@dataclass
class SimStats:
    """All counters one simulation run produces."""

    # Cache behaviour, keyed by (level, kind) e.g. ("l1", "bvh").
    cache_accesses: Dict[Tuple[str, str], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    cache_hits: Dict[Tuple[str, str], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    dram_accesses: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    traffic_bytes: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    # Timeline of L1 BVH miss rate (Figure 11).
    l1_bvh_timeline: WindowedRate = field(default_factory=WindowedRate)

    # SIMT efficiency: sum of active-lane fractions and step count.
    simt_active_sum: float = 0.0
    simt_steps: int = 0

    # Per-mode cycle and intersection-test attribution (Figures 14, 15).
    mode_cycles: Dict[TraversalMode, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    mode_tests: Dict[TraversalMode, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    # Totals.
    total_cycles: float = 0.0
    rays_traced: int = 0
    rays_completed: int = 0
    warps_processed: int = 0
    node_visits: int = 0
    leaf_visits: int = 0
    triangle_tests: int = 0

    # Mechanism-specific counters.
    treelet_queue_pushes: int = 0
    treelet_queue_pops: int = 0
    warp_repacks: int = 0
    treelet_fetch_lines: int = 0
    prefetch_lines: int = 0
    prefetch_unused_lines: int = 0
    cta_saves: int = 0
    cta_restores: int = 0
    queue_table_overflows: int = 0
    count_table_evictions: int = 0
    queue_table_peak_entries: int = 0
    count_table_peak_entries: int = 0

    # -- recording helpers ------------------------------------------------------

    def record_cache(self, level: str, kind: str, hit: bool) -> None:
        self.cache_accesses[(level, kind)] += 1
        if hit:
            self.cache_hits[(level, kind)] += 1

    def record_simt(self, active: int, warp_size: int) -> None:
        self.simt_active_sum += active / warp_size
        self.simt_steps += 1

    def record_mode(self, mode: TraversalMode, cycles: float, tests: int = 0) -> None:
        self.mode_cycles[mode] += cycles
        self.mode_tests[mode] += tests

    # -- derived metrics -----------------------------------------------------

    def miss_rate(self, level: str, kind: str = "bvh") -> float:
        """Miss rate of ``kind`` accesses at ``level``; 0.0 when unused."""
        acc = self.cache_accesses[(level, kind)]
        if acc == 0:
            return 0.0
        return 1.0 - self.cache_hits[(level, kind)] / acc

    def simt_efficiency(self) -> float:
        """Mean active-lane fraction over all warp steps (paper Sec 6.3)."""
        if self.simt_steps == 0:
            return 0.0
        return self.simt_active_sum / self.simt_steps

    def mode_cycle_fractions(self) -> Dict[TraversalMode, float]:
        total = sum(self.mode_cycles.values())
        if total == 0:
            return {mode: 0.0 for mode in TraversalMode}
        return {mode: self.mode_cycles[mode] / total for mode in TraversalMode}

    def mode_test_fractions(self) -> Dict[TraversalMode, float]:
        total = sum(self.mode_tests.values())
        if total == 0:
            return {mode: 0.0 for mode in TraversalMode}
        return {mode: self.mode_tests[mode] / total for mode in TraversalMode}

    def prefetch_unused_fraction(self) -> float:
        if self.prefetch_lines == 0:
            return 0.0
        return self.prefetch_unused_lines / self.prefetch_lines

    def merge(self, other: "SimStats") -> None:
        """Fold another SM's stats into this one (cycles take the max)."""
        for key, value in other.cache_accesses.items():
            self.cache_accesses[key] += value
        for key, value in other.cache_hits.items():
            self.cache_hits[key] += value
        for key, value in other.dram_accesses.items():
            self.dram_accesses[key] += value
        for key, value in other.traffic_bytes.items():
            self.traffic_bytes[key] += value
        for window, count in other.l1_bvh_timeline.hits.items():
            self.l1_bvh_timeline.hits[window] += count
        for window, count in other.l1_bvh_timeline.misses.items():
            self.l1_bvh_timeline.misses[window] += count
        self.simt_active_sum += other.simt_active_sum
        self.simt_steps += other.simt_steps
        for mode in TraversalMode:
            self.mode_cycles[mode] += other.mode_cycles[mode]
            self.mode_tests[mode] += other.mode_tests[mode]
        self.total_cycles = max(self.total_cycles, other.total_cycles)
        self.rays_traced += other.rays_traced
        self.rays_completed += other.rays_completed
        self.warps_processed += other.warps_processed
        self.node_visits += other.node_visits
        self.leaf_visits += other.leaf_visits
        self.triangle_tests += other.triangle_tests
        self.treelet_queue_pushes += other.treelet_queue_pushes
        self.treelet_queue_pops += other.treelet_queue_pops
        self.warp_repacks += other.warp_repacks
        self.treelet_fetch_lines += other.treelet_fetch_lines
        self.prefetch_lines += other.prefetch_lines
        self.prefetch_unused_lines += other.prefetch_unused_lines
        self.cta_saves += other.cta_saves
        self.cta_restores += other.cta_restores
        self.queue_table_overflows += other.queue_table_overflows
        self.count_table_evictions += other.count_table_evictions
        self.queue_table_peak_entries = max(
            self.queue_table_peak_entries, other.queue_table_peak_entries
        )
        self.count_table_peak_entries = max(
            self.count_table_peak_entries, other.count_table_peak_entries
        )
