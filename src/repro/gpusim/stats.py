"""Statistics shared by all timing models.

``SimStats`` collects the quantities the paper's figures report:

* cache accesses / hits / misses per level, split by access kind;
* a *windowed timeline* of L1 BVH miss rates (Figure 11);
* SIMT-efficiency samples (Figures 1b, 13b);
* cycles and intersection tests attributed to each traversal mode
  (Figures 14, 15);
* traffic and event counts feeding the energy model (Figure 17).

All readers — ``snapshot()``, ``miss_rate()``, the mode-fraction
helpers, ``WindowedRate.series()`` and ``merge()``'s reads of the other
object — are side-effect-free: lookups use ``.get`` and never insert
defaultdict keys, so reading a statistic cannot change the object's
serialized form (``tests/test_obs_equivalence.py`` pins this with
byte-identity regressions; ``docs/OBSERVABILITY.md`` has the story).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class TraversalMode(enum.Enum):
    """The three phases of dynamic treelet queues (Section 3.2)."""

    INITIAL_RAY_STATIONARY = "initial_ray_stationary"
    TREELET_STATIONARY = "treelet_stationary"
    FINAL_RAY_STATIONARY = "final_ray_stationary"


@dataclass
class WindowedRate:
    """Accumulates (hit, miss) events into fixed-width cycle windows."""

    window_cycles: float = 5000.0
    hits: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    misses: Dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, cycle: float, hit: bool) -> None:
        window = int(cycle // self.window_cycles)
        if hit:
            self.hits[window] += 1
        else:
            self.misses[window] += 1

    def series(self) -> List[Tuple[float, float]]:
        """``(window_start_cycle, miss_rate)`` points in time order.

        A pure reader: ``.get`` lookups never insert defaultdict keys, so
        calling it does not change the object's serialized form.
        """
        windows = sorted(set(self.hits) | set(self.misses))
        out = []
        for w in windows:
            h = self.hits.get(w, 0)
            m = self.misses.get(w, 0)
            if h + m:
                out.append((w * self.window_cycles, m / (h + m)))
        return out


@dataclass
class SimStats:
    """All counters one simulation run produces."""

    # Cache behaviour, keyed by (level, kind) e.g. ("l1", "bvh").
    cache_accesses: Dict[Tuple[str, str], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    cache_hits: Dict[Tuple[str, str], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    dram_accesses: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    traffic_bytes: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    # Timeline of L1 BVH miss rate (Figure 11).
    l1_bvh_timeline: WindowedRate = field(default_factory=WindowedRate)

    # SIMT efficiency: sum of active-lane fractions and step count.
    simt_active_sum: float = 0.0
    simt_steps: int = 0

    # Per-mode cycle and intersection-test attribution (Figures 14, 15).
    mode_cycles: Dict[TraversalMode, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    mode_tests: Dict[TraversalMode, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    # Totals.
    total_cycles: float = 0.0
    rays_traced: int = 0
    rays_completed: int = 0
    warps_processed: int = 0
    node_visits: int = 0
    leaf_visits: int = 0
    triangle_tests: int = 0

    # Mechanism-specific counters.
    treelet_queue_pushes: int = 0
    treelet_queue_pops: int = 0
    warp_repacks: int = 0
    treelet_fetch_lines: int = 0
    prefetch_lines: int = 0
    prefetch_unused_lines: int = 0
    cta_saves: int = 0
    cta_restores: int = 0
    queue_table_overflows: int = 0
    count_table_evictions: int = 0
    queue_table_peak_entries: int = 0
    count_table_peak_entries: int = 0

    # -- recording helpers ------------------------------------------------------

    def record_cache(self, level: str, kind: str, hit: bool) -> None:
        self.cache_accesses[(level, kind)] += 1
        if hit:
            self.cache_hits[(level, kind)] += 1

    def record_simt(self, active: int, warp_size: int) -> None:
        self.simt_active_sum += active / warp_size
        self.simt_steps += 1

    def record_mode(self, mode: TraversalMode, cycles: float, tests: int = 0) -> None:
        self.mode_cycles[mode] += cycles
        self.mode_tests[mode] += tests

    # -- derived metrics -----------------------------------------------------

    def miss_rate(self, level: str, kind: str = "bvh") -> float:
        """Miss rate of ``kind`` accesses at ``level``; 0.0 when unused.

        Reads with ``.get`` so querying an unused level/kind never
        inserts a key into the defaultdict-backed counters.
        """
        acc = self.cache_accesses.get((level, kind), 0)
        if acc == 0:
            return 0.0
        return 1.0 - self.cache_hits.get((level, kind), 0) / acc

    def simt_efficiency(self) -> float:
        """Mean active-lane fraction over all warp steps (paper Sec 6.3)."""
        if self.simt_steps == 0:
            return 0.0
        return self.simt_active_sum / self.simt_steps

    def mode_cycle_fractions(self) -> Dict[TraversalMode, float]:
        total = sum(self.mode_cycles.values())
        if total == 0:
            return {mode: 0.0 for mode in TraversalMode}
        return {
            mode: self.mode_cycles.get(mode, 0.0) / total for mode in TraversalMode
        }

    def mode_test_fractions(self) -> Dict[TraversalMode, float]:
        total = sum(self.mode_tests.values())
        if total == 0:
            return {mode: 0.0 for mode in TraversalMode}
        return {mode: self.mode_tests.get(mode, 0) / total for mode in TraversalMode}

    def prefetch_unused_fraction(self) -> float:
        if self.prefetch_lines == 0:
            return 0.0
        return self.prefetch_unused_lines / self.prefetch_lines

    def snapshot(self) -> Dict:
        """A plain-dict, JSON-serializable view of every raw counter.

        Purely observational — building it inserts no defaultdict keys —
        and canonical: two stats objects hold the same counters iff their
        snapshots compare equal, which is what the merge/read purity
        regression tests (and the observability bridge) rely on.
        """
        return {
            "cache_accesses": {
                f"{level}/{kind}": count
                for (level, kind), count in sorted(self.cache_accesses.items())
            },
            "cache_hits": {
                f"{level}/{kind}": count
                for (level, kind), count in sorted(self.cache_hits.items())
            },
            "dram_accesses": dict(sorted(self.dram_accesses.items())),
            "traffic_bytes": dict(sorted(self.traffic_bytes.items())),
            "l1_bvh_timeline": {
                "window_cycles": self.l1_bvh_timeline.window_cycles,
                "hits": dict(sorted(self.l1_bvh_timeline.hits.items())),
                "misses": dict(sorted(self.l1_bvh_timeline.misses.items())),
            },
            "simt_active_sum": self.simt_active_sum,
            "simt_steps": self.simt_steps,
            "mode_cycles": {
                mode.value: cycles for mode, cycles in sorted(
                    self.mode_cycles.items(), key=lambda item: item[0].value
                )
            },
            "mode_tests": {
                mode.value: tests for mode, tests in sorted(
                    self.mode_tests.items(), key=lambda item: item[0].value
                )
            },
            "total_cycles": self.total_cycles,
            "rays_traced": self.rays_traced,
            "rays_completed": self.rays_completed,
            "warps_processed": self.warps_processed,
            "node_visits": self.node_visits,
            "leaf_visits": self.leaf_visits,
            "triangle_tests": self.triangle_tests,
            "treelet_queue_pushes": self.treelet_queue_pushes,
            "treelet_queue_pops": self.treelet_queue_pops,
            "warp_repacks": self.warp_repacks,
            "treelet_fetch_lines": self.treelet_fetch_lines,
            "prefetch_lines": self.prefetch_lines,
            "prefetch_unused_lines": self.prefetch_unused_lines,
            "cta_saves": self.cta_saves,
            "cta_restores": self.cta_restores,
            "queue_table_overflows": self.queue_table_overflows,
            "count_table_evictions": self.count_table_evictions,
            "queue_table_peak_entries": self.queue_table_peak_entries,
            "count_table_peak_entries": self.count_table_peak_entries,
        }

    def merge(self, other: "SimStats") -> None:
        """Fold another SM's stats into this one (cycles take the max).

        ``other`` is only read — never mutated: all lookups iterate its
        existing keys or use ``.get``, so merging leaves the merged-from
        object byte-identical.
        """
        for key, value in other.cache_accesses.items():
            self.cache_accesses[key] += value
        for key, value in other.cache_hits.items():
            self.cache_hits[key] += value
        for key, value in other.dram_accesses.items():
            self.dram_accesses[key] += value
        for key, value in other.traffic_bytes.items():
            self.traffic_bytes[key] += value
        for window, count in other.l1_bvh_timeline.hits.items():
            self.l1_bvh_timeline.hits[window] += count
        for window, count in other.l1_bvh_timeline.misses.items():
            self.l1_bvh_timeline.misses[window] += count
        self.simt_active_sum += other.simt_active_sum
        self.simt_steps += other.simt_steps
        for mode, value in other.mode_cycles.items():
            self.mode_cycles[mode] += value
        for mode, tests in other.mode_tests.items():
            self.mode_tests[mode] += tests
        self.total_cycles = max(self.total_cycles, other.total_cycles)
        self.rays_traced += other.rays_traced
        self.rays_completed += other.rays_completed
        self.warps_processed += other.warps_processed
        self.node_visits += other.node_visits
        self.leaf_visits += other.leaf_visits
        self.triangle_tests += other.triangle_tests
        self.treelet_queue_pushes += other.treelet_queue_pushes
        self.treelet_queue_pops += other.treelet_queue_pops
        self.warp_repacks += other.warp_repacks
        self.treelet_fetch_lines += other.treelet_fetch_lines
        self.prefetch_lines += other.prefetch_lines
        self.prefetch_unused_lines += other.prefetch_unused_lines
        self.cta_saves += other.cta_saves
        self.cta_restores += other.cta_restores
        self.queue_table_overflows += other.queue_table_overflows
        self.count_table_evictions += other.count_table_evictions
        self.queue_table_peak_entries = max(
            self.queue_table_peak_entries, other.queue_table_peak_entries
        )
        self.count_table_peak_entries = max(
            self.count_table_peak_entries, other.count_table_peak_entries
        )


class StatsFold:
    """Deferred accumulator for the batched BVH memory path.

    The SoA replay engines (:mod:`repro.gpusim.soa_engines`) price
    thousands of cache lines per phase; paying a defaultdict lookup per
    line for counters nobody reads mid-phase is most of the scalar
    engine's overhead.  This fold batches them in plain ints and commits
    into a :class:`SimStats` with ``flush()``.

    The commit is *presence-exact*: every write is guarded by ``if
    delta``, so a counter key exists in the stats dicts iff the scalar
    engine would have inserted it, and ``snapshot()`` (which sorts keys)
    compares bit-identical.  All folded quantities are integers, so the
    deferred addition is order-independent; float accumulators
    (``simt_active_sum``, ``mode_cycles``) are *not* folded here — the
    engines thread those through ordered locals instead, because float
    addition is not associative.

    Timeline windows need one extra rule: an engine's cycle counter is
    monotonically non-decreasing, so the fold keeps only the *current*
    window's hit/miss tallies and flushes them whenever the window
    advances (``set_window``).
    """

    __slots__ = (
        "stats", "window_cycles", "window", "win_hits", "win_misses",
        "l1_acc", "l1_hit", "l2_acc", "l2_hit",
        "dram_n", "bytes_l2_to_l1", "bytes_dram",
    )

    def __init__(self, stats: SimStats):
        self.stats = stats
        self.window_cycles = stats.l1_bvh_timeline.window_cycles
        self.window: int | None = None
        self.win_hits = 0
        self.win_misses = 0
        self.l1_acc = 0
        self.l1_hit = 0
        self.l2_acc = 0
        self.l2_hit = 0
        self.dram_n = 0
        self.bytes_l2_to_l1 = 0
        self.bytes_dram = 0

    def set_window(self, window: int) -> None:
        """Make ``window`` current, committing the previous window's tallies."""
        if window != self.window:
            self._flush_window()
            self.window = window

    def _flush_window(self) -> None:
        if self.window is None:
            return
        timeline = self.stats.l1_bvh_timeline
        if self.win_hits:
            timeline.hits[self.window] += self.win_hits
            self.win_hits = 0
        if self.win_misses:
            timeline.misses[self.window] += self.win_misses
            self.win_misses = 0

    def flush(self) -> None:
        """Commit everything accumulated so far into the stats object."""
        self._flush_window()
        self.window = None
        stats = self.stats
        if self.l1_acc:
            stats.cache_accesses[("l1", "bvh")] += self.l1_acc
            self.l1_acc = 0
        if self.l1_hit:
            stats.cache_hits[("l1", "bvh")] += self.l1_hit
            self.l1_hit = 0
        if self.l2_acc:
            stats.cache_accesses[("l2", "bvh")] += self.l2_acc
            self.l2_acc = 0
        if self.l2_hit:
            stats.cache_hits[("l2", "bvh")] += self.l2_hit
            self.l2_hit = 0
        if self.dram_n:
            stats.dram_accesses["bvh"] += self.dram_n
            self.dram_n = 0
        if self.bytes_l2_to_l1:
            stats.traffic_bytes["l2_to_l1"] += self.bytes_l2_to_l1
            self.bytes_l2_to_l1 = 0
        if self.bytes_dram:
            stats.traffic_bytes["dram"] += self.bytes_dram
            self.bytes_dram = 0
