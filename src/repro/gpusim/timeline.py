"""RT-unit activity timelines and chrome-trace export.

When a :class:`ActivityTimeline` is attached to a VTQ engine, it records
one span per scheduling unit — an arriving warp's initial phase, one
treelet queue's processing, one final-phase warp — with start/end cycles.
``to_chrome_trace`` serializes the spans in the Chrome tracing JSON
format, so a run can be inspected in ``chrome://tracing`` / Perfetto:
the three-phase structure of dynamic treelet queues becomes literally
visible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union


@dataclass(frozen=True)
class Span:
    """One contiguous activity interval on an SM's RT unit."""

    name: str
    category: str
    start: float
    end: float
    sm: int = 0
    args: Optional[Dict] = None

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError("span ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


class ActivityTimeline:
    """Collects spans; attach one per engine via ``engine.timeline``."""

    def __init__(self, sm: int = 0):
        self.sm = sm
        self.spans: List[Span] = []

    def record(
        self, name: str, category: str, start: float, end: float,
        args: Optional[Dict] = None,
    ) -> None:
        self.spans.append(Span(name, category, start, end, self.sm, args))

    def total_by_category(self) -> Dict[str, float]:
        """Summed span duration per category."""
        out: Dict[str, float] = {}
        for span in self.spans:
            out[span.category] = out.get(span.category, 0.0) + span.duration
        return out

    def busy_cycles(self) -> float:
        return sum(span.duration for span in self.spans)

    def __len__(self) -> int:
        return len(self.spans)


def merge_timelines(timelines: List[ActivityTimeline]) -> List[Span]:
    """All spans of several SMs' timelines, time-ordered."""
    spans: List[Span] = []
    for timeline in timelines:
        spans.extend(timeline.spans)
    return sorted(spans, key=lambda s: (s.start, s.sm))


def _span_mode(category: str) -> str:
    """The traversal mode a span category runs in.

    All ray-stationary flavours (baseline warps, the vtq initial and
    final phases) collapse to one mode; treelet-queue processing is the
    other.
    """
    return (
        "treelet-stationary"
        if category == "treelet_stationary" else "ray-stationary"
    )


def _mode_switch_events(spans: List[Span], cycles_per_us: float) -> List[Dict]:
    """Instant events marking each SM's ray↔treelet mode transitions.

    The vtq engine interleaves its three phases, so the raw span soup
    hides where an SM actually flipped between ray-stationary and
    treelet-stationary execution; thread-scoped instant markers make the
    switches visible at a glance in the viewer.
    """
    events: List[Dict] = []
    last_mode: Dict[int, str] = {}
    for span in sorted(spans, key=lambda s: (s.sm, s.start, s.end)):
        mode = _span_mode(span.category)
        previous = last_mode.get(span.sm)
        if previous is not None and mode != previous:
            events.append(
                {
                    "name": f"mode switch: {previous} -> {mode}",
                    "cat": "mode_switch",
                    "ph": "i",  # instant event
                    "s": "t",  # thread (SM) scoped
                    "ts": span.start / cycles_per_us,
                    "pid": 0,
                    "tid": span.sm,
                    "args": {"from": previous, "to": mode},
                }
            )
        last_mode[span.sm] = mode
    return events


def to_chrome_trace(
    spans: List[Span], cycles_per_us: float = 1365.0
) -> Dict:
    """Chrome tracing ("trace event") document for a list of spans.

    Each span becomes a complete ("X") event; every per-SM transition
    between ray-stationary and treelet-stationary spans also gets an
    instant ("i") mode-switch marker.  ``cycles_per_us`` converts
    simulated cycles to display microseconds (default: the paper's
    1365 MHz core clock).
    """
    if cycles_per_us <= 0:
        raise ValueError("cycles_per_us must be positive")
    events = []
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",  # complete event
                "ts": span.start / cycles_per_us,
                "dur": span.duration / cycles_per_us,
                "pid": 0,
                "tid": span.sm,
                "args": span.args or {},
            }
        )
    events.extend(_mode_switch_events(spans, cycles_per_us))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro RT-unit activity timeline"},
    }


def write_chrome_trace(
    spans: List[Span], path: Union[str, Path], cycles_per_us: float = 1365.0
) -> None:
    """Write the chrome-trace JSON to disk."""
    Path(path).write_text(json.dumps(to_chrome_trace(spans, cycles_per_us)))
