"""Post-render invariant checks (the simulation-state sanitizer).

A timing simulator can silently produce garbage: a ray dropped between
queues, a miscounted cache hit, an energy term gone negative — the
figures still render, just wrong.  The sanitizer cross-checks a
completed render's statistics against conservation laws the model must
obey:

* **Ray conservation** — every ray submitted to an RT unit terminates
  (``rays_traced == rays_completed``).
* **Queue conservation** — every ray pushed into the treelet queues is
  popped back out (``treelet_queue_pushes == treelet_queue_pops``).
* **Cache reconciliation** — per (level, kind): ``0 <= hits <= accesses``,
  and the windowed L1 BVH timeline's hit+miss total equals the L1 BVH
  access counter (they record the same events in two places).
* **Energy sanity** — every energy component is finite and non-negative.
* **Image sanity** — the image is finite and non-negative radiance.

Opt-in: pass ``sanitize=True`` to ``render_scene`` or set the
``REPRO_SANITIZE`` environment variable (CI does, on the fast scene
pair).  Violations raise :class:`repro.errors.SanitizerError` listing
every failed check.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import SanitizerError
from repro.gpusim.energy import EnergyModel

_TRUTHY = ("1", "true", "yes", "on")


def sanitizer_enabled() -> bool:
    """Whether the ``REPRO_SANITIZE`` environment variable turns checks on."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


@dataclass
class SanitizeReport:
    """Outcome of one sanitizer pass: which checks ran, what failed."""

    violations: List[str] = field(default_factory=list)
    checked: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"ok ({len(self.checked)} checks)"
        return "; ".join(self.violations)


def sanitize_render(result, setup=None) -> SanitizeReport:
    """Run every invariant check against a :class:`RenderResult`."""
    report = SanitizeReport()
    stats = result.stats

    report.checked.append("ray_conservation")
    if stats.rays_traced != stats.rays_completed:
        report.violations.append(
            f"ray conservation: {stats.rays_traced} rays traced but "
            f"{stats.rays_completed} completed"
        )

    report.checked.append("queue_conservation")
    if stats.treelet_queue_pushes != stats.treelet_queue_pops:
        report.violations.append(
            f"queue conservation: {stats.treelet_queue_pushes} pushes vs "
            f"{stats.treelet_queue_pops} pops"
        )

    report.checked.append("cache_reconciliation")
    for key in sorted(set(stats.cache_accesses) | set(stats.cache_hits)):
        accesses = stats.cache_accesses[key]
        hits = stats.cache_hits[key]
        if not 0 <= hits <= accesses:
            report.violations.append(
                f"cache reconciliation {key}: {hits} hits of {accesses} accesses"
            )

    report.checked.append("l1_timeline_reconciliation")
    timeline_events = sum(stats.l1_bvh_timeline.hits.values()) + sum(
        stats.l1_bvh_timeline.misses.values()
    )
    l1_bvh = stats.cache_accesses[("l1", "bvh")]
    if timeline_events != l1_bvh:
        report.violations.append(
            f"l1 timeline reconciliation: {timeline_events} timeline events "
            f"vs {l1_bvh} l1 bvh accesses"
        )

    report.checked.append("counter_signs")
    for name in (
        "rays_traced", "rays_completed", "warps_processed", "node_visits",
        "leaf_visits", "triangle_tests", "treelet_queue_pushes",
        "treelet_queue_pops", "total_cycles",
    ):
        if getattr(stats, name) < 0:
            report.violations.append(f"negative counter: {name}={getattr(stats, name)}")

    report.checked.append("energy_non_negative")
    line_bytes = setup.gpu.line_bytes if setup is not None else 32
    energy = EnergyModel().compute(stats, line_bytes=line_bytes)
    for component, value in energy.as_dict().items():
        if not math.isfinite(value) or value < 0:
            report.violations.append(f"energy component {component} = {value}")

    report.checked.append("image_sanity")
    image = result.image
    if not np.all(np.isfinite(image)):
        report.violations.append("image contains non-finite radiance")
    elif image.size and float(image.min()) < 0:
        report.violations.append(f"image contains negative radiance ({image.min()})")

    return report


def check_render(result, setup=None) -> SanitizeReport:
    """Sanitize and raise :class:`SanitizerError` on any violation."""
    report = sanitize_render(result, setup)
    if not report.ok:
        scene = getattr(result, "scene_name", "") or "?"
        raise SanitizerError(
            f"sanitizer failed for {scene}/{result.policy}: {report.summary()}",
            violations=report.violations,
        )
    return report
