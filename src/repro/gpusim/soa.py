"""Struct-of-arrays render plans: the functional half of the SoA engine.

The scalar engines interleave two very different jobs per warp step:

* the *functional* work — pop a stack entry, slab-test children,
  Moller-Trumbore triangles, update closest hits, shade; and
* the *timing* work — price each lane's cache lines, charge the warp the
  slowest lane, advance the SM's cycle counter.

Only the timing work depends on the policy (baseline / prefetch / vtq)
and on the GPU configuration; the functional work is identical across
all of them, because every policy unit visits the same BVH items in the
same per-ray order (treelet-stationary scheduling changes *when* a ray's
visits happen, never *which* or in what per-ray sequence).

This module exploits that split.  :func:`build_plan` runs the functional
work **once per scene**, for *all* rays of a bounce at a time — a
bounce-synchronous wave loop that pops every live ray, then expands all
popped nodes in one :func:`expand_nodes_batch` call and intersects all
popped leaves in one :func:`intersect_leaves_batch` call (group sizes in
the hundreds, where the numpy kernels finally pay off).  The result is a
:class:`RenderPlan` of per-ray :class:`Trace` records: the visit
sequence (cache lines, node/leaf kind, triangle-test counts) plus just
enough stack/treelet position metadata for the replay engines
(:mod:`repro.gpusim.soa_engines`) to reconstruct every scheduling
decision the scalar policy units make.  Replays are pure timing loops —
no geometry, no shading, no numpy — and one plan serves every policy ×
cache-config combination for the scene, which is where the end-to-end
speedup comes from.

Plans are cached on the ``SceneBVH`` object itself (a small FIFO keyed
by render parameters, ``REPRO_SOA_PLAN_CACHE`` entries), so sweeps that
run several policies over one scene build the plan once.

``REPRO_SOA_ENGINE`` (default on) gates the whole path;
:func:`repro.tracing.render.render_scene` falls back to the scalar
engines when it is off, when a memory-trace recorder is attached, or for
the sorted policy (see ``RenderResult.engine_fallback_reason``).
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bvh.traversal import (
    expand_nodes_batch,
    intersect_leaves_batch,
    pop_next_recording,
)

_soa_enabled = os.environ.get("REPRO_SOA_ENGINE", "1") != "0"


def set_soa_engine(enabled: bool) -> bool:
    """Toggle the SoA engine path; returns the previous value."""
    global _soa_enabled
    previous = _soa_enabled
    _soa_enabled = bool(enabled)
    return previous


def soa_engine_enabled() -> bool:
    return _soa_enabled


def plan_cache_entries() -> int:
    """How many plans to keep per BVH (``REPRO_SOA_PLAN_CACHE``)."""
    try:
        return max(1, int(os.environ.get("REPRO_SOA_PLAN_CACHE", "4")))
    except ValueError:
        return 4


class Trace:
    """One ray's complete traversal record for one bounce.

    The visit lists (``n`` entries, index ``p`` = p-th item visit):

    ``lines``
        The item's cache-line tuple (``bvh.item_lines[item]``) — what the
        replay engines price.
    ``isleaf`` / ``tests``
        Leaf flag and triangle-test count (0 for nodes).

    The position lists (``n + 1`` entries; position ``p`` is the state
    *before* visit ``p`` was popped, position ``n`` is the state before
    the failed retiring pop):

    ``curwork``
        ``bool(current_stack)`` — raw, including entries that the next
        pop will cull.
    ``cur_tre`` / ``next_tre``
        ``current_treelet`` and the treelet-stack top (-1 when empty).
    ``top_item``
        Top ``current_stack`` item id (-1 when empty) — what the
        prefetcher's access observer reads.

    ``chains``
        Sparse dict ``{p: (T1, .., Tk)}``: treelets entered during the
        pop of visit ``p`` (``None`` when no pop crossed a treelet).
    ``tail``
        Treelets entered during the failed retiring pop — equal to the
        state's pending treelets, top first; the vtq engine drains these
        one ``enter_treelet`` at a time.

    Every trace has at least one visit: ``init_traversal`` pushes the
    root with ``entry_t = tmin``, which can never be culled.
    """

    __slots__ = (
        "lines", "isleaf", "tests",
        "curwork", "cur_tre", "next_tre", "top_item",
        "chains", "tail",
    )

    def __init__(self):
        self.lines: List[Tuple[int, ...]] = []
        self.isleaf: List[bool] = []
        self.tests: List[int] = []
        self.curwork: List[bool] = []
        self.cur_tre: List[int] = []
        self.next_tre: List[int] = []
        self.top_item: List[int] = []
        self.chains: Optional[Dict[int, Tuple[int, ...]]] = None
        self.tail: Tuple[int, ...] = ()


class RenderPlan:
    """Everything policy-independent about one render.

    ``traces`` maps ``(slot, bounce)`` to a :class:`Trace`; a key's
    presence for ``bounce + 1`` is the continuation signal (the path
    survived shading).  ``radiance`` is the per-slot ``(num_slots, 3)``
    accumulated radiance — produced by the real shading engine during
    plan construction, so images reconstructed from it are bit-identical
    to the scalar path.  Slots are sample-major: ``slot = sample *
    pixels + pixel``.
    """

    __slots__ = ("traces", "radiance", "pixels", "spp", "num_slots")

    def __init__(self, traces, radiance, pixels: int, spp: int):
        self.traces: Dict[Tuple[int, int], Trace] = traces
        self.radiance: np.ndarray = radiance
        self.pixels = pixels
        self.spp = spp
        self.num_slots = pixels * spp

    def image_accum(self) -> np.ndarray:
        """Per-pixel radiance sums, accumulated in slot order.

        Matches the scalar path's ``accum[path.pixel] += path.radiance``
        loop bit for bit: sample-major slots mean each pixel receives its
        samples' radiance in sample order, and the vectorized per-sample
        adds below perform the same per-element float additions in the
        same order.
        """
        accum = np.zeros((self.pixels, 3))
        radiance = self.radiance
        pixels = self.pixels
        for sample in range(self.spp):
            accum += radiance[sample * pixels : (sample + 1) * pixels]
        return accum


def _build_traces(bvh, entries) -> None:
    """Run every state in ``entries`` to completion, recording traces.

    ``entries`` is a list of ``(trace, state)`` pairs, all at the same
    bounce.  All states advance in lock-step waves: one instrumented pop
    per live ray, then a single batched node-expansion and a single
    batched leaf-intersection over the whole wave (hundreds of groups —
    far past the kernels' scalar-fallback cutoffs).  Per-ray visit order
    is exactly :func:`repro.bvh.traversal.pop_next`'s (the instrumented
    pop mirrors it), so the recorded sequence is the scalar engines'.
    """
    item_lines = bvh.item_lines
    leaf_tris = bvh.leaf_tris
    live = entries
    while live:
        node_groups = []
        leaf_groups = []
        next_live = []
        for rec in live:
            trace, state = rec
            # Position metadata is captured before the pop so position p
            # describes the stacks as the policy engines observe them
            # between visits (park/queue/vote decisions all happen there).
            current_stack = state.current_stack
            treelet_stack = state.treelet_stack
            trace.curwork.append(bool(current_stack))
            trace.cur_tre.append(state.current_treelet)
            trace.next_tre.append(treelet_stack[-1][0] if treelet_stack else -1)
            trace.top_item.append(current_stack[-1][0] if current_stack else -1)

            popped, chain = pop_next_recording(bvh, state)
            if popped is None:
                trace.tail = chain
                continue
            item, is_leaf, local_idx = popped
            if chain:
                if trace.chains is None:
                    trace.chains = {}
                trace.chains[len(trace.lines)] = chain
            trace.lines.append(item_lines[item])
            trace.isleaf.append(is_leaf)
            if is_leaf:
                trace.tests.append(len(leaf_tris[local_idx]))
                leaf_groups.append((state, local_idx))
            else:
                trace.tests.append(0)
                node_groups.append((state, local_idx))
            next_live.append(rec)
        if node_groups:
            expand_nodes_batch(bvh, node_groups)
        if leaf_groups:
            intersect_leaves_batch(bvh, leaf_groups)
        live = next_live


def build_plan(scene, bvh, setup, seed: int = 0) -> RenderPlan:
    """Build the policy-independent render plan for one scene render.

    Drives real ``PathState`` / ``RayTraversalState`` objects through the
    real :class:`~repro.tracing.path_tracer.ShadingEngine`, so hit
    points, bounce decisions and radiance are the scalar path's exact
    floats — only the *schedule* of the functional work differs (waves
    over all rays instead of warp-at-a-time).
    """
    from repro.tracing.path_tracer import ShadingEngine

    width = setup.image_width
    height = setup.image_height
    pixels = width * height
    spp = max(1, setup.samples_per_pixel)
    shading = ShadingEngine(scene, bvh, max_bounces=setup.max_bounces, seed=seed)

    # Sample-major slots, mirroring render_scene's path construction
    # exactly (same camera calls, same jitter seeding).
    paths = []
    for sample in range(spp):
        jitter = sample if spp > 1 else None
        primaries = scene.camera.primary_rays(width, height, jitter_seed=jitter)
        paths.extend(
            shading.make_primary(
                p, primaries.origins[p], primaries.directions[p], sample=sample
            )
            for p in range(pixels)
        )

    traces: Dict[Tuple[int, int], Trace] = {}
    generation = [
        (slot, shading.begin_traversal(paths[slot])) for slot in range(len(paths))
    ]
    bounce = 0
    while generation:
        entries = [(Trace(), state) for _slot, state in generation]
        _build_traces(bvh, entries)
        next_generation = []
        for (slot, state), (trace, _state) in zip(generation, entries):
            traces[(slot, bounce)] = trace
            if shading.shade(paths[slot], state):
                next_generation.append((slot, shading.begin_traversal(paths[slot])))
        generation = next_generation
        bounce += 1

    radiance = np.array([path.radiance for path in paths])
    return RenderPlan(traces, radiance, pixels, spp)


_PLAN_CACHE_ATTR = "_soa_plan_cache"


def get_plan(scene, bvh, setup, seed: int = 0) -> RenderPlan:
    """:func:`build_plan`, cached on the BVH object.

    The cache key is every input the plan depends on: the render
    geometry parameters and the shading seed.  (GPU/cache configuration
    and policy are deliberately absent — plans are timing-free.)  The
    scene is checked by identity via a weakref: a BVH is always paired
    with the scene it was built from, but a mismatched call must not
    serve a stale plan.
    """
    key = (
        seed,
        setup.image_width,
        setup.image_height,
        max(1, setup.samples_per_pixel),
        setup.max_bounces,
    )
    cache = getattr(bvh, _PLAN_CACHE_ATTR, None)
    if cache is None:
        cache = OrderedDict()
        setattr(bvh, _PLAN_CACHE_ATTR, cache)
    entry = cache.get(key)
    if entry is not None:
        scene_ref, plan = entry
        if scene_ref() is scene:
            cache.move_to_end(key)
            return plan
        del cache[key]
    plan = build_plan(scene, bvh, setup, seed)
    cache[key] = (weakref.ref(scene), plan)
    while len(cache) > plan_cache_entries():
        cache.popitem(last=False)
    return plan
