"""GPU substrate: a transaction-level timing model of a ray-tracing GPU.

This package plays the role Vulkan-Sim plays in the paper (see DESIGN.md
for the fidelity argument).  The model is *warp-step* granular: one step =
every active ray of the warp in the RT unit visits one BVH item; the step's
latency is the slowest ray's memory access plus the fixed-function
intersection latency.  The RT unit has a warp buffer of size one (Table 1),
so warps are processed serially per SM and an SM's cycle counter advances
as a discrete-event timeline.

Modules:

* :mod:`repro.gpusim.config` — Table 1 configuration and scaling presets.
* :mod:`repro.gpusim.cache` — L1/L2 cache models (LRU, set-assoc or full).
* :mod:`repro.gpusim.memory` — the per-SM memory hierarchy with bypass
  rules, reserved ray-data region, burst fetches and windowed statistics.
* :mod:`repro.gpusim.energy` — per-event energy accounting (AccelWattch
  stand-in).
* :mod:`repro.gpusim.warp` — warps, trace jobs and SIMT bookkeeping.
* :mod:`repro.gpusim.rt_unit` — the baseline ray-stationary RT unit.
* :mod:`repro.gpusim.stats` — counters and timelines shared by all models.
* :mod:`repro.gpusim.soa` / :mod:`repro.gpusim.soa_engines` — the
  struct-of-arrays warp engine: precomputed render plans replayed through
  pure timing loops (``REPRO_SOA_ENGINE``, default on; bit-identical to
  the scalar engines).
"""

from repro.gpusim.config import GPUConfig, ScaledSetup, paper_config, scaled_config
from repro.gpusim.cache import Cache
from repro.gpusim.memory import AccessKind, MemorySystem
from repro.gpusim.energy import EnergyModel, ENERGY_COSTS
from repro.gpusim.stats import SimStats, TraversalMode
from repro.gpusim.warp import (
    SimRay,
    TraceWarp,
    batch_kernels_enabled,
    set_batch_kernels,
    warp_step,
)
from repro.gpusim.rt_unit import BaselineRTUnit
from repro.gpusim.soa import set_soa_engine, soa_engine_enabled
from repro.gpusim.dram import DRAMModel
from repro.gpusim.timeline import ActivityTimeline, write_chrome_trace

__all__ = [
    "GPUConfig",
    "ScaledSetup",
    "paper_config",
    "scaled_config",
    "Cache",
    "AccessKind",
    "MemorySystem",
    "EnergyModel",
    "ENERGY_COSTS",
    "SimStats",
    "TraversalMode",
    "SimRay",
    "TraceWarp",
    "batch_kernels_enabled",
    "set_batch_kernels",
    "warp_step",
    "BaselineRTUnit",
    "set_soa_engine",
    "soa_engine_enabled",
    "DRAMModel",
    "ActivityTimeline",
    "write_chrome_trace",
]
