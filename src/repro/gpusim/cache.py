"""Cache models: LRU, fully-associative or set-associative, line granular.

The model tracks *which lines are resident*, not their contents — the
simulators fetch actual BVH data from the in-memory scene structures and
only ask the cache "would this access hit?".
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Optional


class Cache:
    """An LRU cache over line ids.

    Parameters
    ----------
    name:
        Label used in statistics ("l1", "l2").
    size_bytes / line_bytes:
        Capacity; ``size_bytes // line_bytes`` lines fit.
    assoc:
        Ways per set; ``None`` means fully associative (one set).
    reserved_bytes:
        Capacity carved out for a reserved region (the paper reserves part
        of the L2 for ray data); reserved capacity is unavailable to
        normal allocations.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_bytes: int,
        assoc: Optional[int] = None,
        reserved_bytes: int = 0,
    ):
        if size_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache and line sizes must be positive")
        if reserved_bytes < 0 or reserved_bytes >= size_bytes:
            raise ValueError("reserved_bytes must be in [0, size_bytes)")
        self.name = name
        self.line_bytes = line_bytes
        total_lines = (size_bytes - reserved_bytes) // line_bytes
        if total_lines < 1:
            raise ValueError("cache too small for even one line")
        if assoc is None:
            self.num_sets = 1
            self.assoc = total_lines
        else:
            if assoc < 1:
                raise ValueError("assoc must be >= 1")
            self.assoc = min(assoc, total_lines)
            self.num_sets = max(1, total_lines // self.assoc)
        self._sets: Dict[int, OrderedDict] = {}
        self.accesses = 0
        self.hits = 0
        self.insertions = 0
        self.evictions = 0

    # -- core operations ----------------------------------------------------

    def _set_of(self, line: int) -> OrderedDict:
        idx = line % self.num_sets
        s = self._sets.get(idx)
        if s is None:
            s = OrderedDict()
            self._sets[idx] = s
        return s

    def set_of(self, line: int) -> OrderedDict:
        """The (lazily created) LRU set holding ``line``.

        Public so the batched access path
        (:meth:`repro.gpusim.memory.MemorySystem.access_lines_batch`) can
        operate on sets directly and amortize per-line method-call
        overhead; the set layout (an ``OrderedDict`` in LRU order, line id
        -> True, indexed by ``line % num_sets``) is a stable contract
        between the two modules.
        """
        return self._set_of(line)

    def lookup(self, line: int) -> bool:
        """Non-allocating probe: hit updates LRU order, miss changes nothing."""
        self.accesses += 1
        s = self._set_of(line)
        if line in s:
            s.move_to_end(line)
            self.hits += 1
            return True
        return False

    def insert(self, line: int) -> Optional[int]:
        """Install ``line``, evicting the LRU line of its set if needed.

        Returns the evicted line id, or ``None``.
        """
        s = self._set_of(line)
        if line in s:
            s.move_to_end(line)
            return None
        victim = None
        if len(s) >= self.assoc:
            victim, _ = s.popitem(last=False)
            self.evictions += 1
        s[line] = True
        self.insertions += 1
        return victim

    def access(self, line: int) -> bool:
        """Probe and allocate on miss (the common read path)."""
        hit = self.lookup(line)
        if not hit:
            self.insert(line)
        return hit

    def contains(self, line: int) -> bool:
        """Residence check without touching statistics or LRU order."""
        return line in self._set_of(line)

    def invalidate(self, line: int) -> bool:
        """Drop a line; True if it was resident."""
        s = self._set_of(line)
        if line in s:
            del s[line]
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (statistics are kept)."""
        self._sets.clear()

    # -- bulk helpers -----------------------------------------------------------

    def insert_many(self, lines: Iterable[int]) -> int:
        """Install many lines (burst fill); returns how many were new."""
        new = 0
        for line in lines:
            s = self._set_of(line)
            if line in s:
                s.move_to_end(line)
                continue
            if len(s) >= self.assoc:
                s.popitem(last=False)
                self.evictions += 1
            s[line] = True
            self.insertions += 1
            new += 1
        return new

    # -- introspection -----------------------------------------------------------

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets.values())

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.assoc

    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.hits / self.accesses

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, {self.capacity_lines} lines x {self.line_bytes}B, "
            f"sets={self.num_sets}, assoc={self.assoc})"
        )
