"""Warps, trace jobs and the warp-step primitive.

A :class:`SimRay` is one path-tracing ray in flight: its traversal state
plus identity (pixel, CTA, bounce).  A :class:`TraceWarp` is up to
``warp_size`` rays issued together by ``traceRayEXT()``.

:func:`warp_step` is the core timing primitive shared by every RT-unit
model: advance all unfinished rays of a warp by one BVH item visit, charge
the slowest ray's memory latency plus the fixed-function intersection
latency, and record SIMT efficiency.

Two implementations exist behind :func:`warp_step`: the scalar reference
(one Python call per lane) and a batch path that pops every lane first
and then slab-tests / Moller-Trumbores all lanes' children and triangles
in one vectorized kernel call (:mod:`repro.geometry.batch`).  The two are
bit-identical — same hits, same memory access sequence, same cycle and
stat accounting — so the selection (``REPRO_BATCH_KERNELS``, default on,
with a small-warp scalar cutoff) is purely a wall-clock decision.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bvh.traversal import (
    RayTraversalState,
    expand_nodes_batch,
    intersect_leaves_batch,
    pop_next,
    single_step,
)
from repro.gpusim.config import GPUConfig
from repro.gpusim.memory import AccessKind, MemorySystem
from repro.gpusim.stats import SimStats, TraversalMode

# Below this many active lanes the per-call numpy overhead outweighs the
# vectorization win; the scalar path is used (results are identical).
_BATCH_MIN_LANES = 4

_batch_enabled = os.environ.get("REPRO_BATCH_KERNELS", "1") != "0"


def set_batch_kernels(enabled: bool) -> bool:
    """Toggle the vectorized warp-step path; returns the previous value."""
    global _batch_enabled
    previous = _batch_enabled
    _batch_enabled = bool(enabled)
    return previous


def batch_kernels_enabled() -> bool:
    return _batch_enabled


class SimRay:
    """One ray in flight through the simulated GPU."""

    __slots__ = ("ray_id", "pixel", "cta_id", "bounce", "state")

    def __init__(
        self,
        ray_id: int,
        pixel: int,
        cta_id: int,
        bounce: int,
        state: RayTraversalState,
    ):
        self.ray_id = ray_id
        self.pixel = pixel
        self.cta_id = cta_id
        self.bounce = bounce
        self.state = state

    def finished(self) -> bool:
        return self.state.finished()

    def __repr__(self) -> str:
        return f"SimRay(id={self.ray_id}, pixel={self.pixel}, bounce={self.bounce})"


@dataclass
class TraceWarp:
    """A warp's worth of rays submitted to the RT unit."""

    rays: List[SimRay]
    cta_id: int
    ready_cycle: float = 0.0
    seq: int = 0  # submission order; the GTO scheduler's age key

    def active_rays(self) -> List[SimRay]:
        return [r for r in self.rays if not r.finished()]

    def all_finished(self) -> bool:
        return all(r.finished() for r in self.rays)

    def __len__(self) -> int:
        return len(self.rays)


def warp_step(
    bvh,
    rays: List[SimRay],
    mem: MemorySystem,
    config: GPUConfig,
    stats: SimStats,
    cycle: float,
    mode: TraversalMode,
    in_treelet_only: bool = False,
) -> Tuple[float, List[SimRay], int]:
    """Advance every unfinished ray of ``rays`` by one item visit.

    Returns ``(latency, stepped, tests)``: the step's latency in cycles,
    the rays that actually advanced, and the triangle tests performed.
    Rays whose step returns ``None`` (finished, or parked at a treelet
    boundary when ``in_treelet_only``) are left untouched and excluded
    from ``stepped``.

    Memory accesses of the lanes overlap: the step waits for the slowest
    lane (memory divergence), exactly the RT-unit behaviour the paper's
    SIMT-efficiency argument relies on.
    """
    if (
        _batch_enabled
        and len(rays) >= _BATCH_MIN_LANES
        and all(r.state.all_hits is None for r in rays)
    ):
        return _warp_step_batch(
            bvh, rays, mem, config, stats, cycle, mode, in_treelet_only
        )
    return _warp_step_scalar(
        bvh, rays, mem, config, stats, cycle, mode, in_treelet_only
    )


def _warp_step_scalar(
    bvh,
    rays: List[SimRay],
    mem: MemorySystem,
    config: GPUConfig,
    stats: SimStats,
    cycle: float,
    mode: TraversalMode,
    in_treelet_only: bool,
) -> Tuple[float, List[SimRay], int]:
    """Reference implementation: one :func:`single_step` per lane."""
    max_latency = 0.0
    missing_lanes = 0
    misses = 0
    stepped: List[SimRay] = []
    tests = 0
    step_leaves = 0
    gaussian = getattr(bvh, "prim_kind", "triangle") == "gaussian"
    item_lines = bvh.item_lines
    recorder = mem.recorder
    lane_lines = [] if recorder is not None else None
    for ray in rays:
        result = single_step(bvh, ray.state, in_treelet_only=in_treelet_only)
        if result is None:
            continue
        item, is_leaf, ray_tests = result
        access_latency, ray_misses = mem.access_lines(
            item_lines[item], AccessKind.BVH, cycle
        )
        max_latency = max(max_latency, access_latency)
        if ray_misses:
            missing_lanes += 1
            misses += ray_misses
        stepped.append(ray)
        if lane_lines is not None:
            lane_lines.append(item_lines[item])
        tests += ray_tests
        if is_leaf:
            step_leaves += 1
            stats.leaf_visits += 1
        else:
            stats.node_visits += 1
    if not stepped:
        return 0.0, [], 0
    stats.triangle_tests += tests
    # Leaf-cost operands are recorded (and priced) only on gaussian
    # workloads, so triangle traces and cycle counts stay byte-identical
    # to the historical model.
    cost_tests = tests if gaussian else 0
    cost_leaves = step_leaves if gaussian else 0
    if recorder is not None:
        recorder.step(mode, lane_lines, tests=cost_tests, leaf_lanes=cost_leaves)
    return _finish_step(
        config, stats, mode, stepped, tests, max_latency, missing_lanes, misses,
        gaussian_leaf_cycles(config, cost_tests, cost_leaves) if gaussian else 0.0,
    )


def _warp_step_batch(
    bvh,
    rays: List[SimRay],
    mem: MemorySystem,
    config: GPUConfig,
    stats: SimStats,
    cycle: float,
    mode: TraversalMode,
    in_treelet_only: bool,
) -> Tuple[float, List[SimRay], int]:
    """Vectorized implementation: pop all lanes, intersect in two kernels.

    The intersection math has no side effects on the memory model, so
    hoisting it ahead of the per-lane cache accesses (which stay in lane
    order) reproduces the scalar path exactly.
    """
    entries = []  # (ray, item, is_leaf, local_idx)
    for ray in rays:
        popped = pop_next(bvh, ray.state, in_treelet_only=in_treelet_only)
        if popped is not None:
            entries.append((ray, popped[0], popped[1], popped[2]))
    if not entries:
        return 0.0, [], 0

    node_groups = [
        (ray.state, local) for ray, _item, is_leaf, local in entries if not is_leaf
    ]
    leaf_groups = [
        (ray.state, local) for ray, _item, is_leaf, local in entries if is_leaf
    ]
    if node_groups:
        expand_nodes_batch(bvh, node_groups)
    if leaf_groups:
        intersect_leaves_batch(bvh, leaf_groups)

    max_latency = 0.0
    missing_lanes = 0
    misses = 0
    stepped: List[SimRay] = []
    tests = 0
    step_leaves = 0
    gaussian = getattr(bvh, "prim_kind", "triangle") == "gaussian"
    item_lines = bvh.item_lines
    leaf_tris = bvh.leaf_tris
    recorder = mem.recorder
    lane_lines = [] if recorder is not None else None
    for ray, item, is_leaf, local_idx in entries:
        access_latency, ray_misses = mem.access_lines(
            item_lines[item], AccessKind.BVH, cycle
        )
        max_latency = max(max_latency, access_latency)
        if ray_misses:
            missing_lanes += 1
            misses += ray_misses
        stepped.append(ray)
        if lane_lines is not None:
            lane_lines.append(item_lines[item])
        if is_leaf:
            tests += len(leaf_tris[local_idx])
            step_leaves += 1
            stats.leaf_visits += 1
        else:
            stats.node_visits += 1
    stats.triangle_tests += tests
    cost_tests = tests if gaussian else 0
    cost_leaves = step_leaves if gaussian else 0
    if recorder is not None:
        recorder.step(mode, lane_lines, tests=cost_tests, leaf_lanes=cost_leaves)
    return _finish_step(
        config, stats, mode, stepped, tests, max_latency, missing_lanes, misses,
        gaussian_leaf_cycles(config, cost_tests, cost_leaves) if gaussian else 0.0,
    )


def step_latency(
    config: GPUConfig,
    lanes: int,
    max_latency: float,
    missing_lanes: int,
    misses: int,
    leaf_cycles: float = 0.0,
) -> float:
    """The cycle cost of one warp step with ``lanes`` stepped lanes.

    Fractional-stall cost: the RT unit's memory scheduler keeps servicing
    lanes whose data is ready while the missing lanes wait, so a step
    costs the hit latency plus the worst miss latency weighted by the
    fraction of lanes that missed.  (A pure max() model would make every
    partially-missing step cost a full DRAM round trip, erasing the
    benefit of anything — prefetching, treelets — that converts *some*
    lanes' misses into hits.)  Each distinct miss beyond the first also
    pays the configured miss-port serialization.

    ``leaf_cycles`` is the workload-dependent extra leaf cost of the
    step (gaussian alpha evaluation + blend bookkeeping; see
    :func:`gaussian_leaf_cycles`).  Zero on triangle workloads — the
    guarded add keeps triangle steps float-identical to the historical
    formula.

    Shared by the scalar warp step and the SoA replay engines; the float
    operation order here is part of the bit-exactness contract.
    """
    latency = float(config.l1_latency)
    if missing_lanes:
        miss_fraction = missing_lanes / lanes
        latency += miss_fraction * max(0.0, max_latency - config.l1_latency)
        latency += config.miss_serialization_cycles * (misses - 1)
    latency += config.intersection_latency
    if leaf_cycles:
        latency += leaf_cycles
    return latency


def gaussian_leaf_cycles(config: GPUConfig, tests: int, leaf_lanes: int) -> float:
    """Extra leaf cost of one warp step on a gaussian workload.

    ``tests`` gaussian candidates each pay an alpha evaluation and each
    of the ``leaf_lanes`` leaf-visiting lanes pays the front-to-back
    blend bookkeeping.  Callers pass zeros on triangle workloads.
    """
    return float(
        config.gaussian_alpha_cycles * tests
        + config.gaussian_blend_cycles * leaf_lanes
    )


def _finish_step(
    config: GPUConfig,
    stats: SimStats,
    mode: TraversalMode,
    stepped: List[SimRay],
    tests: int,
    max_latency: float,
    missing_lanes: int,
    misses: int,
    leaf_cycles: float = 0.0,
) -> Tuple[float, List[SimRay], int]:
    latency = step_latency(
        config, len(stepped), max_latency, missing_lanes, misses, leaf_cycles
    )
    stats.record_simt(len(stepped), config.warp_size)
    stats.record_mode(mode, latency, tests)
    return latency, stepped, tests
