"""The baseline RT unit: ray-stationary traversal, one warp at a time.

This is the paper's baseline GPU (Section 2.2 / Figure 3): warps issued by
raygen shaders queue at the RT unit, which has a warp buffer of size one
(Table 1) and therefore traverses one warp to completion before taking the
next.  Rays use the treelet traversal *order* of Chou et al. (the paper's
baseline does too), but with no queues, no prefetching and no repacking —
each ray simply fetches the nodes it needs through the cache hierarchy.

The unit is a per-SM discrete-event engine.  Warps carry a ``ready_cycle``;
the scheduler is greedy-then-oldest (GTO): among ready warps it keeps the
lowest submission sequence number.  Completion callbacks may submit more
warps (secondary bounces), which is how the path tracer drives multi-bounce
workloads through the unit.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro import faults
from repro.gpusim.budget import check_cycle_budget
from repro.gpusim.config import GPUConfig
from repro.gpusim.memory import MemorySystem
from repro.gpusim.stats import SimStats, TraversalMode
from repro.gpusim.warp import TraceWarp, warp_step

CompletionCallback = Callable[[TraceWarp, float], None]


def apply_stall_fault(engine) -> None:
    """Charge the SIM_STALL chaos fault, if armed for this engine class.

    Fault specs match on the engine's class name; the SoA replay engines
    subclass the scalar units with names that contain the parent's, so
    specs written against either keep firing.
    """
    spec = faults.should_fire(faults.SIM_STALL, type(engine).__name__)
    if spec is not None:
        engine.cycle += float(spec.payload.get("extra_cycles", 1e12))


class BaselineRTUnit:
    """One SM's baseline RT unit."""

    def __init__(
        self,
        bvh,
        config: GPUConfig,
        mem: MemorySystem,
        stats: SimStats,
        mode: TraversalMode = TraversalMode.FINAL_RAY_STATIONARY,
        cycle_budget: Optional[float] = None,
    ):
        self.bvh = bvh
        self.config = config
        self.mem = mem
        self.stats = stats
        self.cycle = 0.0
        self.cycle_budget = cycle_budget
        # Build the numpy mirrors of the traversal tables up front so the
        # vectorized warp step never pays the one-time cost mid-run.
        bvh.batch_tables()
        self._pending: List = []  # heap of (ready_cycle, seq, warp)
        self._seq = 0
        # Baseline runs have no mode phases; everything is attributed to a
        # single ray-stationary bucket.
        self._mode = mode
        # Optional ActivityTimeline (repro.gpusim.timeline).
        self.timeline = None

    # -- submission ---------------------------------------------------------------

    def submit(self, warp: TraceWarp) -> None:
        """Queue a warp for traversal (callable from completion callbacks)."""
        warp.seq = self._seq
        self._seq += 1
        heapq.heappush(self._pending, (warp.ready_cycle, warp.seq, warp))
        self.stats.rays_traced += len(warp.active_rays())
        recorder = self.mem.recorder
        if recorder is not None:
            recorder.on_submit(warp)

    def has_work(self) -> bool:
        return bool(self._pending)

    # -- execution ------------------------------------------------------------------

    def process_warp(self, warp: TraceWarp) -> None:
        """Traverse every ray of ``warp`` to completion (warp buffer = 1)."""
        start = self.cycle
        recorder = self.mem.recorder
        if recorder is not None:
            recorder.begin_warp(warp)
        active = warp.active_rays()
        launched = len(active)
        while active:
            latency, stepped, _ = warp_step(
                self.bvh, active, self.mem, self.config, self.stats,
                self.cycle, self._mode,
            )
            if not stepped:
                break
            self.cycle += latency
            active = [r for r in active if not r.finished()]
        # Rays can finish inside a step (all remaining stack entries culled)
        # and be excluded from ``stepped``; refilter before counting.
        active = [r for r in active if not r.finished()]
        self.stats.rays_completed += launched - len(active)
        self.stats.warps_processed += 1
        if recorder is not None:
            recorder.end_warp(self.cycle)
        if self.timeline is not None:
            self.timeline.record(
                "warp", "ray_stationary", start, self.cycle,
                {"cta": warp.cta_id, "rays": len(warp.rays)},
            )

    def run(self, on_complete: Optional[CompletionCallback] = None) -> float:
        """Drain all work; returns the final cycle count.

        ``on_complete(warp, cycle)`` fires when a warp finishes traversal
        and may call :meth:`submit` to enqueue follow-up warps (shading /
        secondary rays).
        """
        apply_stall_fault(self)
        while self._pending:
            check_cycle_budget(self.cycle, self.cycle_budget, self.stats)
            ready, _, warp = heapq.heappop(self._pending)
            if ready > self.cycle:
                self.cycle = ready  # RT unit idles until the warp arrives
            self.process_warp(warp)
            if on_complete is not None:
                on_complete(warp, self.cycle)
        self.stats.total_cycles = max(self.stats.total_cycles, self.cycle)
        return self.cycle
