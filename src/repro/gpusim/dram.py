"""An optional banked DRAM timing model.

The default memory system charges a flat ``dram_latency`` per miss (the
scale-model choice).  For bandwidth-sensitivity studies this module
models the structure behind that constant: channels, banks, open rows,
and bank occupancy — so streams with row locality (treelet bursts, DFS
layouts) are rewarded and scattered access patterns pay row cycles and
bank queueing.

Enable with ``GPUConfig(detailed_dram=True)``; each SM's MemorySystem
then owns one :class:`DRAMModel` (cross-SM contention stays unmodeled,
consistent with the rest of the scale model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.gpusim.config import GPUConfig


@dataclass
class DRAMStats:
    """Row-buffer behaviour counters."""

    accesses: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    queue_wait_cycles: float = 0.0

    def row_hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.row_hits / self.accesses


class DRAMModel:
    """Channels x banks with open-row policy and bank busy times."""

    def __init__(self, config: GPUConfig):
        self.channels = config.dram_channels
        self.banks = config.dram_banks
        self.row_lines = max(1, config.dram_row_bytes // config.line_bytes)
        self.t_cas = config.dram_t_cas
        self.t_rcd = config.dram_t_rcd
        self.t_rp = config.dram_t_rp
        self.base = config.dram_base_cycles
        total_banks = self.channels * self.banks
        self._open_row: List[int] = [-1] * total_banks
        self._ready_at: List[float] = [0.0] * total_banks
        self.stats = DRAMStats()

    def _locate(self, line: int) -> Tuple[int, int]:
        """(bank index, row id) of a cache line.

        Consecutive lines interleave across channels (burst-friendly),
        rows are contiguous line runs within a channel.
        """
        channel = line % self.channels
        channel_line = line // self.channels
        row = channel_line // self.row_lines
        bank = (row % self.banks) + channel * self.banks
        return bank, row

    def access(self, line: int, cycle: float) -> float:
        """Latency of one line read issued at ``cycle``."""
        bank, row = self._locate(line)
        self.stats.accesses += 1

        wait = max(0.0, self._ready_at[bank] - cycle)
        self.stats.queue_wait_cycles += wait

        if self._open_row[bank] == row:
            self.stats.row_hits += 1
            service = self.t_cas
        else:
            if self._open_row[bank] != -1:
                self.stats.row_conflicts += 1
                service = self.t_rp + self.t_rcd + self.t_cas  # precharge+activate
            else:
                service = self.t_rcd + self.t_cas  # activate only
            self._open_row[bank] = row
        self._ready_at[bank] = cycle + wait + service
        return self.base + wait + service

    def reset(self) -> None:
        """Close all rows and clear busy times (statistics are kept)."""
        self._open_row = [-1] * len(self._open_row)
        self._ready_at = [0.0] * len(self._ready_at)
