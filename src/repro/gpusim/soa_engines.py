"""SoA replay engines: the timing half of the SoA warp engine.

These engines are drop-in subclasses of the scalar policy units that
consume :class:`~repro.gpusim.soa.Trace` records (via
:class:`ReplayState`) instead of live ``RayTraversalState`` objects.
All functional work — popping, slab tests, triangle intersection,
shading — happened once in :func:`repro.gpusim.soa.build_plan`; what
remains per policy is the pure timing loop: consume the next visit of
every active lane, price all lanes' cache lines through one
:meth:`MemorySystem.access_lines_batch` call, charge the warp
:func:`~repro.gpusim.warp.step_latency`, and make the same scheduling
decisions (parking, queueing, repacking, prefetch votes) the scalar
unit makes, from the trace's recorded position metadata.

The bit-exactness discipline (enforced by ``tests/test_soa_engine.py``):

* every cache mutation, miss-hook firing and DRAM model call happens in
  the scalar engine's exact order (``access_lines_batch`` inlines the
  per-line sequence; ray-data and treelet-fetch accesses stay live);
* integer counters are deferred into plain locals or the engine's
  :class:`~repro.gpusim.stats.StatsFold` and committed with
  presence-exact guards at phase boundaries;
* float accumulators (``cycle``, ``simt_active_sum``,
  ``mode_cycles[...]``) are threaded through *ordered* locals — seeded
  from the current value, accumulated in the scalar op order, written
  back at phase end — because float addition is not associative.  The
  vtq completion callbacks mutate ``engine.cycle`` (CTA save/restore
  bandwidth), so the local cycle is synced to ``self.cycle`` around
  every ``_complete`` sweep;
* phase boundaries (where folds are committed) are exactly where the
  scalar engines can observe stats mid-run: the cycle-budget check at
  the top of the run loop, and the end of the run.

Subclass names deliberately contain the parent names
(``SoABaselineRTUnit`` etc.) so fault specs matching on engine class
names (``faults.SIM_STALL`` keys) keep firing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.prefetch import PrefetchRTUnit
from repro.core.rt_unit_vtq import VTQRTUnit
from repro.gpusim.rt_unit import BaselineRTUnit
from repro.gpusim.stats import StatsFold, TraversalMode
from repro.gpusim.warp import TraceWarp, gaussian_leaf_cycles, step_latency


class ReplayState:
    """A ray's traversal state reconstructed from a :class:`Trace`.

    Duck-types the slice of ``RayTraversalState`` the policy units read
    — ``finished() / has_current_work() / current_treelet /
    next_treelet() / enter_treelet() / current_stack`` — while the
    engines advance it with :meth:`consume` (ray-stationary pop) or
    :meth:`consume_tq` (treelet-stationary pop).

    Invariants mirrored from the live state machine:

    * ``p`` is the next visit to consume; position metadata for the
      *current* park point is ``tr.*[p]``.
    * A chain at ``p`` means the live pop crossed ``chains[p][ci:]``
      treelet boundaries before reaching visit ``p``; ray-stationary
      pops cross silently, treelet-stationary pops park at each boundary
      (``consume_tq`` returns None until ``enter_treelet`` has walked
      the whole chain).
    * Past the last visit (``p == n``) the ray drains ``tr.tail`` — the
      treelets the live retiring pop advanced through — one
      ``enter_treelet`` per treelet-phase requeue, and finishes when the
      tail is exhausted.
    """

    __slots__ = ("tr", "p", "n", "ci", "chw", "tail_i", "done", "_ctre")

    # The warp-step batch gate reads ``state.all_hits is None``; replay
    # engines never call warp_step, but keep the attribute honest.
    all_hits = None

    def __init__(self, tr):
        self.tr = tr
        self.p = 0
        self.n = len(tr.isleaf)
        self.ci = 0
        self.chw = tr.curwork[0]
        self.tail_i = 0
        self.done = False
        self._ctre: Optional[int] = None

    # -- the RayTraversalState surface the policy units read ---------------------

    def finished(self) -> bool:
        return self.done

    def has_current_work(self) -> bool:
        return self.chw

    @property
    def current_treelet(self) -> int:
        ctre = self._ctre
        if ctre is not None:
            return ctre
        return self.tr.cur_tre[self.p]

    @property
    def current_stack(self):
        """Just enough stack for the prefetcher's access observer
        (truthiness + top item).  Only read between ray-stationary steps,
        where the ray is never mid-chain, so the recorded top item is the
        live stack top."""
        if not self.chw:
            return ()
        return ((self.tr.top_item[self.p],),)

    def next_treelet(self) -> Optional[int]:
        tr = self.tr
        p = self.p
        if p >= self.n:
            tail = tr.tail
            ti = self.tail_i
            return tail[ti] if ti < len(tail) else None
        chains = tr.chains
        if chains is not None:
            chain = chains.get(p)
            if chain is not None and self.ci < len(chain):
                return chain[self.ci]
        t = tr.next_tre[p]
        return None if t < 0 else t

    def enter_treelet(self, treelet: int) -> int:
        """Engines only call this with ``next_treelet()``'s value, so the
        effect is fully determined: advance one chain/tail position and
        expose the entered treelet's work."""
        if self.p >= self.n:
            self.tail_i += 1
        else:
            self.ci += 1
        self.chw = True
        self._ctre = treelet
        return 1

    # -- visit consumption -------------------------------------------------------

    def consume(self) -> Optional[int]:
        """Ray-stationary pop: the next visit index, or None when the ray
        retires (treelet boundaries are crossed silently, as
        ``pop_next``'s advance loop does)."""
        p = self.p
        if p >= self.n:
            self.done = True
            self.chw = False
            return None
        self.ci = 0
        self._ctre = None
        p1 = p + 1
        self.p = p1
        tr = self.tr
        chw = tr.curwork[p1]
        self.chw = chw
        if p1 == self.n and not chw and not tr.tail:
            self.done = True
        return p

    def consume_tq(self) -> Optional[int]:
        """Treelet-stationary pop: like :meth:`consume`, but parks
        (returns None, no current work) at every treelet boundary the
        live in-treelet pop would fail at — an unentered chain position,
        or the tail."""
        p = self.p
        tr = self.tr
        if p >= self.n:
            self.chw = False
            if self.tail_i >= len(tr.tail):
                self.done = True
            return None
        chains = tr.chains
        if chains is not None:
            chain = chains.get(p)
            if chain is not None and self.ci < len(chain):
                # The live pop culls the stale current entries (if any),
                # finds the stack empty and parks at the chain boundary.
                self.chw = False
                return None
        self.ci = 0
        self._ctre = None
        p1 = p + 1
        self.p = p1
        chw = tr.curwork[p1]
        self.chw = chw
        if p1 == self.n and not chw and not tr.tail:
            self.done = True
        return p


class SoABaselineRTUnit(BaselineRTUnit):
    """Baseline RT unit replaying a render plan (rays carry ReplayState)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fold = StatsFold(self.stats)

    def run(self, on_complete=None) -> float:
        result = super().run(on_complete)
        self.fold.flush()
        return result

    def process_warp(self, warp: TraceWarp) -> None:
        start = self.cycle
        config = self.config
        stats = self.stats
        batch = self.mem.access_lines_batch
        fold = self.fold
        mode = self._mode
        warp_size = config.warp_size
        cycle = self.cycle
        mode_c = stats.mode_cycles.get(mode, 0.0)
        mode_t = stats.mode_tests.get(mode, 0)
        simt_sum = stats.simt_active_sum
        simt_steps = 0
        nodes = 0
        leaves = 0
        tris = 0
        steps = 0
        launched = 0
        completed = 0
        # Nothing observes ray state mid-warp in the baseline unit, and
        # the ray-stationary replay is fully deterministic: ray i's visit
        # at warp-step s is trace position start+s.  So the per-step
        # consume() collapses to a step counter, and each ReplayState is
        # written exactly once — at retirement (p=n, no chain work, done;
        # the transient chain-work-at-end state the scalar pop passes
        # through is erased by its very next pop, which no one sees).
        gaussian = getattr(self.bvh, "prim_kind", "triangle") == "gaussian"
        live = []
        for ray in warp.rays:
            st = ray.state
            if st.done:
                continue
            launched += 1
            n = st.n
            if st.p >= n:
                st.done = True
                st.chw = False
                completed += 1
                continue
            tr = st.tr
            live.append((st, tr.lines, tr.isleaf, tr.tests, st.p, n))
        while live:
            lane_lines = []
            tests = 0
            step_leaves = 0
            nxt = []
            for entry in live:
                st, lines_l, isleaf_l, tests_l, p0, n = entry
                p = p0 + steps
                lane_lines.append(lines_l[p])
                if isleaf_l[p]:
                    leaves += 1
                    step_leaves += 1
                    tests += tests_l[p]
                else:
                    nodes += 1
                if p + 1 < n:
                    nxt.append(entry)
                else:
                    st.p = n
                    st.chw = False
                    st.done = True
                    completed += 1
            max_latency, missing_lanes, misses = batch(lane_lines, cycle, fold)
            latency = step_latency(
                config, len(lane_lines), max_latency, missing_lanes, misses,
                gaussian_leaf_cycles(config, tests, step_leaves) if gaussian else 0.0,
            )
            simt_sum += len(lane_lines) / warp_size
            simt_steps += 1
            mode_c += latency
            mode_t += tests
            tris += tests
            cycle += latency
            steps += 1
            live = nxt
        self.cycle = cycle
        stats.rays_completed += completed
        stats.warps_processed += 1
        stats.simt_active_sum = simt_sum
        stats.simt_steps += simt_steps
        stats.node_visits += nodes
        stats.leaf_visits += leaves
        stats.triangle_tests += tris
        if steps:
            stats.mode_cycles[mode] = mode_c
            stats.mode_tests[mode] = mode_t
        if self.timeline is not None:
            self.timeline.record(
                "warp", "ray_stationary", start, self.cycle,
                {"cta": warp.cta_id, "rays": len(warp.rays)},
            )


class SoAPrefetchRTUnit(PrefetchRTUnit):
    """Prefetch RT unit replaying a render plan.

    The vote/outstanding machinery is inherited untouched — it reads
    only the state surface ReplayState provides — and the demand-miss
    hook fires live from inside the batched access path, so prefetch
    issue order (and its effect on later lanes' hits) is exact.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fold = StatsFold(self.stats)

    def run(self, on_complete=None) -> float:
        result = super().run(on_complete)
        self.fold.flush()
        return result

    def process_warp(self, warp: TraceWarp) -> None:
        config = self.config
        stats = self.stats
        mem = self.mem
        fold = self.fold
        mode = self._mode
        warp_size = config.warp_size
        reevaluate = self.reevaluate_steps
        active = [r for r in warp.rays if not r.state.done]
        launched = len(active)
        cycle = self.cycle
        mode_c = stats.mode_cycles.get(mode, 0.0)
        mode_t = stats.mode_tests.get(mode, 0)
        simt_sum = stats.simt_active_sum
        simt_steps = 0
        nodes = 0
        leaves = 0
        tris = 0
        steps = 0
        gaussian = getattr(self.bvh, "prim_kind", "triangle") == "gaussian"
        while active:
            if steps % reevaluate == 0:
                self._refresh_votes(active)
                self._settle_outstanding(keep=self._popular_treelets())
            self._note_accesses(active)
            lane_lines = []
            tests = 0
            step_leaves = 0
            nxt = []
            # consume() inlined, minus the ci/_ctre resets: ray-stationary
            # replay never enters a chain, so both stay at their initial
            # values (0 / None) for the ray's whole life.
            for ray in active:
                st = ray.state
                p = st.p
                n = st.n
                if p >= n:
                    st.done = True
                    st.chw = False
                    continue
                tr = st.tr
                p1 = p + 1
                st.p = p1
                chw = tr.curwork[p1]
                st.chw = chw
                lane_lines.append(tr.lines[p])
                if tr.isleaf[p]:
                    leaves += 1
                    step_leaves += 1
                    tests += tr.tests[p]
                else:
                    nodes += 1
                if p1 == n and not chw and not tr.tail:
                    st.done = True
                else:
                    nxt.append(ray)
            if not lane_lines:
                break
            max_latency, missing_lanes, misses = mem.access_lines_batch(
                lane_lines, cycle, fold
            )
            latency = step_latency(
                config, len(lane_lines), max_latency, missing_lanes, misses,
                gaussian_leaf_cycles(config, tests, step_leaves) if gaussian else 0.0,
            )
            simt_sum += len(lane_lines) / warp_size
            simt_steps += 1
            mode_c += latency
            mode_t += tests
            tris += tests
            cycle += latency
            steps += 1
            active = nxt
        self.cycle = cycle
        remaining = sum(1 for ray in active if not ray.state.done)
        stats.rays_completed += launched - remaining
        stats.warps_processed += 1
        stats.simt_active_sum = simt_sum
        stats.simt_steps += simt_steps
        stats.node_visits += nodes
        stats.leaf_visits += leaves
        stats.triangle_tests += tris
        if steps:
            stats.mode_cycles[mode] = mode_c
            stats.mode_tests[mode] = mode_t


class SoAVTQRTUnit(VTQRTUnit):
    """VTQ RT unit replaying a render plan through the real queue tables.

    Queue pushes/pops, count-table evictions, CTA save/restore and the
    phase scheduler all run live on the inherited machinery (the replay
    rays flow through ``TreeletQueues`` as ordinary objects); only the
    per-warp traversal loops are replaced with trace consumption.  The
    completion callback mutates ``self.cycle`` (CTA state bandwidth), so
    the local cycle is synced around every ``_complete`` sweep.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fold = StatsFold(self.stats)

    def run(self, on_ray_complete) -> float:
        result = super().run(on_ray_complete)
        self.fold.flush()
        return result

    def _initial_phase(self, rays: List, cb) -> None:
        phase_start = self.cycle
        self._rays_in_unit += len(rays)
        mem = self.mem
        for ray in rays:
            mem.ray_data_access(ray.ray_id, self.cycle, write=True)

        active = [r for r in rays if not r.state.done]
        for ray in rays:
            if ray.state.done:  # pragma: no cover - degenerate arrivals
                self._complete(ray, cb)

        config = self.config
        stats = self.stats
        fold = self.fold
        mode = TraversalMode.INITIAL_RAY_STATIONARY
        warp_size = config.warp_size
        divergence = self.vtq.divergence_threshold
        position = self._position_treelet
        mode_c = stats.mode_cycles.get(mode, 0.0)
        mode_t = stats.mode_tests.get(mode, 0)
        simt_sum = stats.simt_active_sum
        simt_steps = 0
        nodes = 0
        leaves = 0
        tris = 0
        steps = 0
        gaussian = getattr(self.bvh, "prim_kind", "triangle") == "gaussian"
        cycle = self.cycle
        while active:
            treelets = {position(r) for r in active}
            treelets.discard(None)
            if len(treelets) > divergence:
                break
            lane_lines = []
            tests = 0
            step_leaves = 0
            # consume() inlined; no ray has entered a chain yet in the
            # initial phase, so the ci/_ctre resets are no-ops and drop.
            for ray in active:
                st = ray.state
                p = st.p
                n = st.n
                if p >= n:
                    st.done = True
                    st.chw = False
                    continue
                tr = st.tr
                p1 = p + 1
                st.p = p1
                chw = tr.curwork[p1]
                st.chw = chw
                if p1 == n and not chw and not tr.tail:
                    st.done = True
                lane_lines.append(tr.lines[p])
                if tr.isleaf[p]:
                    leaves += 1
                    step_leaves += 1
                    tests += tr.tests[p]
                else:
                    nodes += 1
            if lane_lines:
                max_latency, missing_lanes, misses = mem.access_lines_batch(
                    lane_lines, cycle, fold
                )
                latency = step_latency(
                    config, len(lane_lines), max_latency, missing_lanes, misses,
                    gaussian_leaf_cycles(config, tests, step_leaves)
                    if gaussian else 0.0,
                )
                simt_sum += len(lane_lines) / warp_size
                simt_steps += 1
                mode_c += latency
                mode_t += tests
                tris += tests
                cycle += latency
                steps += 1
            # Sweep finished rays before the break decision; completion
            # callbacks may move self.cycle, so sync around them.
            self.cycle = cycle
            still_active = []
            for ray in active:
                if ray.state.done:
                    self._complete(ray, cb)
                else:
                    still_active.append(ray)
            cycle = self.cycle
            active = still_active
            if not lane_lines:
                break

        self.cycle = cycle
        for ray in active:
            treelet = position(ray)
            if treelet is None:  # pragma: no cover - finished rays swept above
                self._complete(ray, cb)
            else:
                self.queues.push(treelet, ray)
        stats.warps_processed += 1
        stats.simt_active_sum = simt_sum
        stats.simt_steps += simt_steps
        stats.node_visits += nodes
        stats.leaf_visits += leaves
        stats.triangle_tests += tris
        if steps:
            stats.mode_cycles[mode] = mode_c
            stats.mode_tests[mode] = mode_t
        if self.timeline is not None:
            self.timeline.record(
                "initial warp", "initial_ray_stationary", phase_start, self.cycle,
                {"rays": len(rays), "queued": len(active)},
            )

    def _process_treelet_queue(self, treelet: int, cb) -> None:
        phase_start = self.cycle
        mem = self.mem
        stats = self.stats
        config = self.config
        fold = self.fold
        mode = TraversalMode.TREELET_STATIONARY
        fetch_latency = mem.fetch_treelet(self.bvh.treelet_lines[treelet], self.cycle)
        preload = self.vtq.preload_enabled
        if preload:
            overlap = min(self._preload_credit, fetch_latency)
            fetch_latency -= overlap
        self.cycle += fetch_latency
        # The scalar engine's record_mode(TS, fetch_latency) inserts the
        # mode keys unconditionally; direct defaultdict indexing seeds the
        # locals with the same insertion before deferred accumulation.
        mode_c = stats.mode_cycles[mode]
        mode_t = stats.mode_tests[mode]
        mode_c += fetch_latency
        simt_sum = stats.simt_active_sum
        simt_steps = 0
        nodes = 0
        leaves = 0
        tris = 0
        work_cycles = 0.0
        warp_size = config.warp_size
        prev_warp_cycles = 0.0
        gaussian = getattr(self.bvh, "prim_kind", "triangle") == "gaussian"
        batch = mem.access_lines_batch
        ray_data = mem.ray_data_access
        pop_warp = self.queues.pop_warp
        cycle = self.cycle
        while True:
            rays = pop_warp(treelet, warp_size)
            if not rays:
                break
            load_latency = 0.0
            for ray in rays:
                lat = ray_data(ray.ray_id, cycle)
                if lat > load_latency:
                    load_latency = lat
            if preload:
                load_latency = max(0.0, load_latency - prev_warp_cycles)
            cycle += load_latency
            work_cycles += load_latency
            mode_c += load_latency
            prev_warp_cycles = 0.0

            for ray in rays:
                st = ray.state
                if not st.chw:
                    st.enter_treelet(treelet)

            active = [r for r in rays if not r.state.done]
            while active:
                lane_lines = []
                tests = 0
                step_leaves = 0
                nxt = []
                # consume_tq() inlined: park (contribute nothing) at an
                # unentered chain position or the tail, otherwise pop one
                # visit and stay only while in-treelet work remains.
                for ray in active:
                    st = ray.state
                    p = st.p
                    tr = st.tr
                    n = st.n
                    if p >= n:
                        st.chw = False
                        if st.tail_i >= len(tr.tail):
                            st.done = True
                        continue
                    chains = tr.chains
                    if chains is not None:
                        chain = chains.get(p)
                        if chain is not None and st.ci < len(chain):
                            st.chw = False
                            continue
                    st.ci = 0
                    st._ctre = None
                    p1 = p + 1
                    st.p = p1
                    chw = tr.curwork[p1]
                    st.chw = chw
                    done = p1 == n and not chw and not tr.tail
                    if done:
                        st.done = True
                    lane_lines.append(tr.lines[p])
                    if tr.isleaf[p]:
                        leaves += 1
                        step_leaves += 1
                        tests += tr.tests[p]
                    else:
                        nodes += 1
                    if chw and not done:
                        nxt.append(ray)
                if not lane_lines:
                    break
                max_latency, missing_lanes, misses = batch(lane_lines, cycle, fold)
                latency = step_latency(
                    config, len(lane_lines), max_latency, missing_lanes, misses,
                    gaussian_leaf_cycles(config, tests, step_leaves)
                    if gaussian else 0.0,
                )
                simt_sum += len(lane_lines) / warp_size
                simt_steps += 1
                mode_c += latency
                mode_t += tests
                tris += tests
                cycle += latency
                work_cycles += latency
                prev_warp_cycles += latency
                active = nxt

            # Park or retire every ray of this treelet warp.
            self.cycle = cycle
            for ray in rays:
                st = ray.state
                if st.done:
                    self._complete(ray, cb)
                    continue
                nxt_treelet = st.next_treelet()
                if nxt_treelet is None:
                    self._complete(ray, cb)
                else:
                    self.queues.push(nxt_treelet, ray)
            cycle = self.cycle
            stats.warps_processed += 1

        self.cycle = cycle
        self._preload_credit = work_cycles if preload else 0.0
        stats.mode_cycles[mode] = mode_c
        stats.mode_tests[mode] = mode_t
        stats.simt_active_sum = simt_sum
        stats.simt_steps += simt_steps
        stats.node_visits += nodes
        stats.leaf_visits += leaves
        stats.triangle_tests += tris
        if self.timeline is not None:
            self.timeline.record(
                f"treelet {treelet}", "treelet_stationary", phase_start, self.cycle,
                {"treelet": treelet},
            )

    def _process_final_warp(self, rays: List, cb) -> None:
        phase_start = self.cycle
        mem = self.mem
        stats = self.stats
        config = self.config
        fold = self.fold
        mode = TraversalMode.FINAL_RAY_STATIONARY
        load_latency = 0.0
        for ray in rays:
            lat = mem.ray_data_access(ray.ray_id, self.cycle)
            if lat > load_latency:
                load_latency = lat
        self.cycle += load_latency
        mode_c = stats.mode_cycles[mode]
        mode_t = stats.mode_tests[mode]
        mode_c += load_latency
        simt_sum = stats.simt_active_sum
        simt_steps = 0
        nodes = 0
        leaves = 0
        tris = 0
        warp_size = config.warp_size
        repack_enabled = self.vtq.repack_enabled
        repack_threshold = self.vtq.repack_threshold
        gaussian = getattr(self.bvh, "prim_kind", "triangle") == "gaussian"
        cycle = self.cycle

        active = [r for r in rays if not r.state.done]
        for ray in rays:
            if ray.state.done:  # pragma: no cover - defensive
                self._complete(ray, cb)
        while active:
            lane_lines = []
            tests = 0
            step_leaves = 0
            # consume() inlined; final-phase rays have entered chains, so
            # the ci/_ctre resets must stay.
            for ray in active:
                st = ray.state
                p = st.p
                n = st.n
                if p >= n:
                    st.done = True
                    st.chw = False
                    continue
                st.ci = 0
                st._ctre = None
                tr = st.tr
                p1 = p + 1
                st.p = p1
                chw = tr.curwork[p1]
                st.chw = chw
                if p1 == n and not chw and not tr.tail:
                    st.done = True
                lane_lines.append(tr.lines[p])
                if tr.isleaf[p]:
                    leaves += 1
                    step_leaves += 1
                    tests += tr.tests[p]
                else:
                    nodes += 1
            if lane_lines:
                max_latency, missing_lanes, misses = mem.access_lines_batch(
                    lane_lines, cycle, fold
                )
                latency = step_latency(
                    config, len(lane_lines), max_latency, missing_lanes, misses,
                    gaussian_leaf_cycles(config, tests, step_leaves)
                    if gaussian else 0.0,
                )
                simt_sum += len(lane_lines) / warp_size
                simt_steps += 1
                mode_c += latency
                mode_t += tests
                tris += tests
                cycle += latency
            self.cycle = cycle
            still_active = []
            for ray in active:
                if ray.state.done:
                    self._complete(ray, cb)
                else:
                    still_active.append(ray)
            cycle = self.cycle
            active = still_active
            if not lane_lines:
                break

            if repack_enabled and active and len(active) < repack_threshold:
                refill = self.queues.pop_any(warp_size - len(active))
                if refill:
                    refill_latency = 0.0
                    for ray in refill:
                        lat = mem.ray_data_access(ray.ray_id, cycle)
                        if lat > refill_latency:
                            refill_latency = lat
                    cycle += refill_latency
                    mode_c += refill_latency
                    stats.warp_repacks += 1
                    self.cycle = cycle
                    for ray in refill:
                        if ray.state.done:  # pragma: no cover - defensive
                            self._complete(ray, cb)
                        else:
                            active.append(ray)
                    cycle = self.cycle
        self.cycle = cycle
        stats.warps_processed += 1
        stats.mode_cycles[mode] = mode_c
        stats.mode_tests[mode] = mode_t
        stats.simt_active_sum = simt_sum
        stats.simt_steps += simt_steps
        stats.node_visits += nodes
        stats.leaf_visits += leaves
        stats.triangle_tests += tris
        if self.timeline is not None:
            self.timeline.record(
                "final warp", "final_ray_stationary", phase_start, self.cycle,
                {"initial_rays": len(rays)},
            )
