"""GPU configuration (the paper's Table 1) and the scaled experiment setup.

``paper_config()`` returns Table 1 verbatim.  ``scaled_config()`` returns
the scale-model configuration the reproduction runs by default: the same
latencies and the same *ratios* (L2 = 8x L1, treelet = L1/2, ray budget =
pixels per SM), with capacities shrunk in proportion to the synthetic
scenes (see DESIGN.md's substitution table).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class GPUConfig:
    """Simulated GPU parameters.

    The first block mirrors the paper's Table 1; the second block holds the
    transaction-level model's cost parameters, which Table 1 leaves to
    Vulkan-Sim internals.
    """

    # --- Table 1 -----------------------------------------------------------
    num_sms: int = 16
    max_warps_per_sm: int = 32
    warp_size: int = 32
    max_cta_per_sm: int = 16
    registers_per_sm: int = 32768
    l1_bytes: int = 16 * 1024
    l1_latency: int = 39
    l1_assoc: Optional[int] = None  # None = fully associative (Table 1)
    l2_bytes: int = 128 * 1024
    l2_latency: int = 187
    l2_assoc: int = 16
    rt_units_per_sm: int = 1
    rt_warp_buffer_size: int = 1

    # --- model cost parameters ----------------------------------------------
    line_bytes: int = 32
    dram_latency: int = 471  # Accel-Sim RTX 3080 average DRAM round trip
    dram_line_transfer: int = 2  # extra cycles per line in a burst fetch
    intersection_latency: int = 4  # fixed-function box/tri test per step
    # Optional extra contention: each distinct L1 miss beyond the first in
    # a warp step adds this many cycles on top of the fractional-stall
    # cost (see warp_step).  Zero by default — the fractional-stall model
    # already charges partially-missing steps; this knob exists for
    # bandwidth-pressure sensitivity studies.
    miss_serialization_cycles: int = 0
    raygen_cycles_per_warp: int = 60
    shade_cycles_per_warp: int = 40
    cta_launch_cycles: int = 20
    cta_threads: int = 64  # threads per CTA (2 warps)
    # Gaussian-workload leaf costs (splat scenes, see docs/GAUSSIAN.md).
    # A gaussian candidate is priced like a fixed-function box/tri test
    # *plus* an alpha evaluation in the shader core (the exp and blend
    # math RT hardware does not provide): ``gaussian_alpha_cycles`` per
    # candidate tested, ``gaussian_blend_cycles`` per leaf-visiting lane
    # (front-to-back blend bookkeeping).  Both charge zero on triangle
    # BVHs — the triangle cost model is untouched.
    gaussian_alpha_cycles: int = 8
    gaussian_blend_cycles: int = 2
    # Amortized per-key cost of the software ray sort used by the
    # "sorted" comparison policy (GPU radix sort over (octant, Morton)
    # keys; Garanzha & Loop's overhead is the reason the paper dismisses
    # sorting in favour of treelet queues).
    ray_sort_cycles_per_key: int = 2

    # --- optional banked DRAM model (see repro.gpusim.dram) --------------------
    # When False (default) every DRAM access costs the flat dram_latency;
    # when True, misses go through a channels x banks open-row model whose
    # parameters below sum to ~dram_latency for a row miss.
    detailed_dram: bool = False
    dram_channels: int = 2
    dram_banks: int = 8
    dram_row_bytes: int = 2048
    dram_t_cas: int = 40
    dram_t_rcd: int = 45
    dram_t_rp: int = 45
    dram_base_cycles: int = 340  # controller + interconnect round trip

    # --- ray virtualization ----------------------------------------------------
    max_virtual_rays_per_sm: int = 4096
    raygen_registers_per_thread: int = 10  # ptxas figure from Section 6.6
    simt_stack_depth: int = 2
    cta_resume_schedule_cycles: int = 30

    def __post_init__(self):
        if self.warp_size < 1 or self.num_sms < 1:
            raise ValueError("warp_size and num_sms must be positive")
        if self.l1_bytes % self.line_bytes or self.l2_bytes % self.line_bytes:
            raise ValueError("cache sizes must be multiples of the line size")
        if self.cta_threads % self.warp_size:
            raise ValueError("cta_threads must be a multiple of warp_size")

    # -- derived quantities ---------------------------------------------------

    @property
    def warps_per_cta(self) -> int:
        return self.cta_threads // self.warp_size

    @property
    def treelet_bytes(self) -> int:
        """Treelet budget: half the L1, per the paper's methodology."""
        return self.l1_bytes // 2

    @property
    def ray_record_bytes(self) -> int:
        """Ray origin + direction + tmin + tmax = 32 B (Section 6.5)."""
        return 32

    @property
    def ray_data_reserved_bytes(self) -> int:
        """Reserved L2 region sized for the full virtual ray population."""
        return self.max_virtual_rays_per_sm * self.ray_record_bytes

    def cta_state_bytes(self) -> int:
        """Bytes saved when a CTA is suspended (Section 6.6).

        Per thread: ``raygen_registers_per_thread`` 32-bit registers.  Per
        warp: a 32-bit SIMT mask, PC and reconvergence PC per stack entry.
        """
        per_thread = self.raygen_registers_per_thread * 4
        per_warp = self.simt_stack_depth * (4 + 4 + 4)
        return self.cta_threads * per_thread + self.warps_per_cta * per_warp


@dataclass(frozen=True)
class ScaledSetup:
    """A full experiment setup: GPU config plus workload scale knobs."""

    gpu: GPUConfig
    image_width: int = 64
    image_height: int = 64
    scene_scale: float = 1.0
    max_bounces: int = 3
    samples_per_pixel: int = 1

    @property
    def pixels(self) -> int:
        return self.image_width * self.image_height


def paper_config() -> GPUConfig:
    """Table 1 exactly."""
    return GPUConfig()


def scaled_config(
    cache_divisor: int = 8,
    num_sms: int = 4,
    max_virtual_rays_per_sm: int = 4096,
) -> GPUConfig:
    """The reproduction's default scale-model GPU.

    Caches shrink by ``cache_divisor`` to keep BVH-size : cache-size in the
    paper's regime against the synthetic scenes, and the SM count shrinks
    so a Python-speed simulation finishes; per-SM behaviour (the unit the
    paper's mechanisms live in) is unchanged.  Latencies are untouched.
    """
    base = GPUConfig()
    return replace(
        base,
        num_sms=num_sms,
        l1_bytes=base.l1_bytes // cache_divisor,
        l2_bytes=base.l2_bytes // cache_divisor,
        max_virtual_rays_per_sm=max_virtual_rays_per_sm,
    )


def default_setup(fast: bool = False) -> ScaledSetup:
    """The setup experiments run by default.

    ``REPRO_SCALE`` (a float) multiplies the scene scale and image area
    toward the paper's full 256x256 / 16-SM configuration for users with
    more patience; ``fast=True`` shrinks everything for unit tests.
    """
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    if fast:
        return ScaledSetup(
            gpu=scaled_config(cache_divisor=8, num_sms=2),
            image_width=16,
            image_height=16,
            scene_scale=0.5,
            max_bounces=3,
        )
    side = int(64 * scale**0.5)
    return ScaledSetup(
        gpu=scaled_config(),
        image_width=side,
        image_height=side,
        scene_scale=scale,
        max_bounces=3,
    )
