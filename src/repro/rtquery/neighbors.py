"""RTNN-style fixed-radius neighbor search on the RT substrate.

RTNN (Zhu, PPoPP 2022) accelerates neighbor search with ray-tracing
hardware: every data point becomes a bounding primitive of radius ``r``
(the search radius), and a query at point ``p`` becomes a short ray whose
any-hits are exactly the primitives whose volume ``p`` lies in — i.e. the
points within ``r`` of ``p``, up to the primitive's slack, which an exact
distance filter removes.

Here each point becomes a regular octahedron of circumradius ``r`` (8
triangles); a query is a segment of length ``2r`` from ``p``: any
octahedron containing ``p`` is exited exactly once along the segment, so
it registers one hit.  Geometric slack (the octahedron inscribes radius
``r/sqrt(3)``..``r``) is handled by building at an inflated radius and
filtering candidates by true distance.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.bvh import build_scene_bvh
from repro.bvh.traversal import TraversalOrder, init_traversal, single_step
from repro.geometry.triangle import TriangleMesh

# Octahedron circumradius must cover the search sphere: the octahedron's
# inscribed sphere has radius R/sqrt(3), so R = r*sqrt(3) guarantees every
# point within r of a data point lies inside its octahedron.
_INFLATION = np.sqrt(3.0)

_OCTA_DIRS = np.array(
    [[1, 0, 0], [-1, 0, 0], [0, 1, 0], [0, -1, 0], [0, 0, 1], [0, 0, -1]],
    dtype=np.float64,
)
# Faces as triples of direction indices (one vertex from each axis pair).
_OCTA_FACES = [
    (0, 2, 4), (2, 1, 4), (1, 3, 4), (3, 0, 4),
    (2, 0, 5), (1, 2, 5), (3, 1, 5), (0, 3, 5),
]
_QUERY_DIRECTION = (0.5773502691896258, 0.5773502691896258, 0.5773502691896258)


class NeighborIndex:
    """Fixed-radius nearest-neighbor index over a 3D point set."""

    def __init__(self, points: Sequence, radius: float,
                 treelet_budget_bytes: int = 1024):
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.size == 0:
            raise ValueError("cannot index an empty point set")
        if points.shape[1] != 3:
            raise ValueError("points must be (N, 3)")
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.points = points
        self.radius = float(radius)
        mesh = self._build_mesh()
        self.bvh = build_scene_bvh(mesh, treelet_budget_bytes=treelet_budget_bytes)

    def _build_mesh(self) -> TriangleMesh:
        n = len(self.points)
        r = self.radius * _INFLATION
        corners = self.points[:, None, :] + r * _OCTA_DIRS[None, :, :]  # (N, 6, 3)
        vertices = corners.reshape(-1, 3)
        faces = []
        for p in range(n):
            base = 6 * p
            for a, b, c in _OCTA_FACES:
                faces.append([base + a, base + b, base + c])
        return TriangleMesh(vertices, np.asarray(faces, dtype=np.int64))

    # -- queries --------------------------------------------------------------

    def make_query_state(self, point, ray_id: int = -1):
        """Any-hit segment implementing one radius query as a 'ray'."""
        r = self.radius * _INFLATION
        return init_traversal(
            self.bvh,
            origin=point,
            direction=_QUERY_DIRECTION,
            tmin=0.0,
            tmax=2.0 * r,
            order=TraversalOrder.TREELET,
            ray_id=ray_id,
            collect_all_hits=True,
        )

    def candidates_from_state(self, state) -> List[int]:
        """Point ids whose octahedron the finished query crossed."""
        return sorted({prim // 8 for prim, _ in state.all_hits})

    def within_radius(self, point, state=None) -> List[int]:
        """Exact fixed-radius query: indices of points within ``radius``.

        Pass a finished ``state`` to reuse a traversal run through one of
        the timing engines; otherwise the query runs functionally here.
        """
        point = np.asarray(point, dtype=np.float64)
        if state is None:
            state = self.make_query_state(point)
            while single_step(self.bvh, state) is not None:
                pass
        out = []
        for idx in self.candidates_from_state(state):
            if np.linalg.norm(self.points[idx] - point) <= self.radius:
                out.append(idx)
        return out

    def oracle_within_radius(self, point) -> List[int]:
        """Brute-force ground truth."""
        point = np.asarray(point, dtype=np.float64)
        distance = np.linalg.norm(self.points - point, axis=1)
        return sorted(np.nonzero(distance <= self.radius)[0].tolist())
