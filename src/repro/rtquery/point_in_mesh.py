"""Point-in-mesh classification by ray-crossing parity.

A classic non-rendering BVH workload (voxelization, 3D-print slicing,
collision broad-phase): a point is inside a watertight mesh iff a ray
from it to infinity crosses the surface an odd number of times.  Each
query is literally one any-hit ray, so the whole workload runs through
the RT engines unchanged — the Section 8 generalization argument.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bvh import build_scene_bvh
from repro.bvh.traversal import TraversalOrder, init_traversal, single_step
from repro.geometry.triangle import TriangleMesh

# A fixed irrational-ish direction avoids rays hitting edges/vertices of
# axis-aligned geometry exactly (robust parity).
_QUERY_DIRECTION = (0.5773502691896258, 0.5773502691896258, 0.5773502691896258)


class MeshClassifier:
    """Inside/outside classification against a watertight mesh."""

    def __init__(self, mesh: TriangleMesh, treelet_budget_bytes: int = 1024):
        if mesh.triangle_count == 0:
            raise ValueError("cannot classify against an empty mesh")
        self.mesh = mesh
        self.bvh = build_scene_bvh(mesh, treelet_budget_bytes=treelet_budget_bytes)

    def make_query_state(self, point, ray_id: int = -1):
        """The any-hit traversal state for one containment query."""
        return init_traversal(
            self.bvh,
            origin=point,
            direction=_QUERY_DIRECTION,
            tmin=0.0,
            order=TraversalOrder.TREELET,
            ray_id=ray_id,
            collect_all_hits=True,
        )

    @staticmethod
    def classify_state(state) -> bool:
        """True (inside) when the finished state crossed an odd count."""
        return len(state.all_hits) % 2 == 1

    def contains(self, point) -> bool:
        """Functional containment test for one point (no timing)."""
        state = self.make_query_state(point)
        while single_step(self.bvh, state) is not None:
            pass
        return self.classify_state(state)

    def classify_points(self, points: Sequence) -> np.ndarray:
        """Vector of inside/outside flags for many points."""
        return np.array([self.contains(p) for p in np.atleast_2d(points)])
