"""General tree-traversal workloads on the RT unit (the paper's Section 8).

The paper closes by arguing that because workloads like RT-DBSCAN,
RTIndeX and RTNN "transform their data into a BVH tree and the search
query into a ray", virtualized treelet queues should accelerate them too.
This package implements that claim end-to-end for two such workloads:

* :class:`RangeIndex` — RTIndeX-style database indexing: keys are
  embedded as triangle "fins" along a line, a range scan
  ``[lo, hi]`` becomes a ray segment, and every key in range is an
  any-hit.
* :class:`MeshClassifier` — point-in-mesh classification (voxelization /
  3D-printing style): each query point casts one ray and the crossing
  parity decides inside vs outside.
* :class:`NeighborIndex` — RTNN-style fixed-radius neighbor search:
  points become bounding octahedra, a query becomes a short any-hit
  segment, candidates are distance-filtered exactly.

Both run their query rays through the unmodified timing engines
(baseline, prefetch, VTQ), so the treelet-queue machinery is exercised by
non-rendering traffic exactly as the paper anticipates.
"""

from repro.rtquery.range_index import RangeIndex
from repro.rtquery.point_in_mesh import MeshClassifier
from repro.rtquery.neighbors import NeighborIndex
from repro.rtquery.driver import QueryTimingResult, time_queries

__all__ = [
    "RangeIndex",
    "MeshClassifier",
    "NeighborIndex",
    "QueryTimingResult",
    "time_queries",
]
