"""Timing driver for query workloads: run query rays through the engines.

Rendering has a shading/bounce loop; query workloads are simpler — a flat
batch of independent "rays" (each a prepared traversal state) traced once.
This driver packs them into warps, feeds them to the chosen RT-unit
engine, and reports cycles plus the usual statistics, so RTIndeX-style
and point-in-mesh workloads can be compared across baseline / prefetch /
VTQ exactly like rendering is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.baselines.prefetch import PrefetchRTUnit
from repro.core.config import VTQConfig
from repro.core.rt_unit_vtq import VTQRTUnit
from repro.gpusim.config import GPUConfig, scaled_config
from repro.gpusim.memory import MemorySystem, make_shared_l2
from repro.gpusim.rt_unit import BaselineRTUnit
from repro.gpusim.stats import SimStats
from repro.gpusim.warp import SimRay, TraceWarp


@dataclass
class QueryTimingResult:
    """Outcome of one timed query batch."""

    policy: str
    cycles: float
    stats: SimStats
    states: List  # finished traversal states, query order


def time_queries(
    bvh,
    state_factory: Callable[[int], object],
    num_queries: int,
    policy: str = "baseline",
    config: GPUConfig = None,
    vtq: VTQConfig = None,
) -> QueryTimingResult:
    """Trace ``num_queries`` query rays through one SM's engine.

    ``state_factory(i)`` builds the i-th query's traversal state (see
    ``RangeIndex.make_query_state`` / ``MeshClassifier.make_query_state``).
    Functional results land in the returned ``states`` regardless of
    policy — identical across engines, as with rendering.
    """
    if num_queries < 1:
        raise ValueError("need at least one query")
    config = config or scaled_config()
    stats = SimStats()
    mem = MemorySystem(config, stats, make_shared_l2(config))
    if vtq is None:
        vtq = VTQConfig().scaled_to(min(config.max_virtual_rays_per_sm, num_queries))

    if policy == "baseline":
        engine = BaselineRTUnit(bvh, config, mem, stats)
    elif policy == "prefetch":
        engine = PrefetchRTUnit(bvh, config, mem, stats)
    elif policy == "vtq":
        engine = VTQRTUnit(bvh, config, vtq, mem, stats)
    else:
        raise ValueError(f"unknown policy {policy!r}")

    states = [state_factory(i) for i in range(num_queries)]
    rays = [SimRay(i, i, i // config.cta_threads, 0, states[i])
            for i in range(num_queries)]
    for start in range(0, num_queries, config.warp_size):
        engine.submit(
            TraceWarp(rays[start : start + config.warp_size],
                      cta_id=start // config.cta_threads)
        )

    if isinstance(engine, VTQRTUnit):
        cycles = engine.run(lambda ray, cycle: None)
    else:
        cycles = engine.run()
    return QueryTimingResult(policy=policy, cycles=cycles, stats=stats, states=states)
