"""RTIndeX-style database range index on the RT substrate.

Henneberg & Schuhknecht's RTIndeX (2023) shows a GPU ray-tracing unit can
serve as a database index: every key becomes a tiny primitive placed at
``x = key`` and a range scan ``[lo, hi]`` becomes a ray segment along the
x axis — every primitive the segment hits is a key in range.

We reproduce the geometric embedding with triangle "fins": key ``k`` maps
to a thin triangle in the plane ``x = scale(k)``, crossing the x axis, so
an axis-aligned ray at ``y = z = 0`` pierces exactly the fins of keys in
its segment.  Queries run through the collect-all-hits traversal mode and
(optionally) through any of the timing engines.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.bvh import build_scene_bvh
from repro.bvh.traversal import TraversalOrder, init_traversal, single_step
from repro.geometry.triangle import TriangleMesh

_FIN_HALF_HEIGHT = 0.25


class RangeIndex:
    """An RT-backed sorted index over integer or float keys.

    Parameters
    ----------
    keys:
        The key set (duplicates allowed; each occurrence is a hit).
    treelet_budget_bytes:
        Treelet size for the underlying acceleration structure.
    """

    def __init__(self, keys: Sequence[float], treelet_budget_bytes: int = 1024):
        keys = np.asarray(list(keys), dtype=np.float64)
        if keys.size == 0:
            raise ValueError("cannot index an empty key set")
        self.keys = keys
        lo, hi = float(keys.min()), float(keys.max())
        span = max(hi - lo, 1.0)
        # Map keys into x in [0, 1000] so geometry is well-conditioned.
        self._scale = 1000.0 / span
        self._offset = lo
        mesh = self._build_mesh()
        self.bvh = build_scene_bvh(mesh, treelet_budget_bytes=treelet_budget_bytes)

    def _embed(self, key: float) -> float:
        return (float(key) - self._offset) * self._scale

    def _build_mesh(self) -> TriangleMesh:
        xs = (self.keys - self._offset) * self._scale
        n = len(xs)
        h = _FIN_HALF_HEIGHT
        v0 = np.stack([xs, np.full(n, -h), np.full(n, -h)], axis=1)
        v1 = np.stack([xs, np.full(n, +h), np.full(n, -h)], axis=1)
        v2 = np.stack([xs, np.zeros(n), np.full(n, +h)], axis=1)
        vertices = np.stack([v0, v1, v2], axis=1).reshape(-1, 3)
        indices = np.arange(3 * n).reshape(n, 3)
        return TriangleMesh(vertices, indices)

    # -- queries ------------------------------------------------------------------

    def make_query_state(self, lo: float, hi: float, ray_id: int = -1):
        """The traversal state implementing one range scan as a ray."""
        if hi < lo:
            raise ValueError("range upper bound below lower bound")
        x0 = self._embed(lo)
        x1 = self._embed(hi)
        # Nudge outward so boundary keys (t == tmin/tmax) are included.
        eps = 1e-7 * max(self._scale, 1.0)
        return init_traversal(
            self.bvh,
            origin=(x0 - eps, 0.0, 0.0),
            direction=(1.0, 0.0, 0.0),
            tmin=0.0,
            tmax=(x1 - x0) + 2 * eps,
            order=TraversalOrder.TREELET,
            ray_id=ray_id,
            collect_all_hits=True,
        )

    def range_query(self, lo: float, hi: float) -> List[int]:
        """Indices of all keys in ``[lo, hi]`` (functional path, no timing)."""
        state = self.make_query_state(lo, hi)
        while single_step(self.bvh, state) is not None:
            pass
        return sorted(prim for prim, _ in state.all_hits)

    def range_count(self, lo: float, hi: float) -> int:
        return len(self.range_query(lo, hi))

    def oracle_query(self, lo: float, hi: float) -> List[int]:
        """Ground truth via plain array scan (for verification)."""
        return sorted(np.nonzero((self.keys >= lo) & (self.keys <= hi))[0].tolist())
