"""BVH refitting for animated geometry.

Real-time ray tracing (the paper's target domain) rarely rebuilds the
acceleration structure per frame; it *refits*: keep the tree topology,
treelet partition and memory layout, and only tighten every node's
bounds around the deformed vertices.  Refitting is O(nodes) with no SAH
work, at the cost of gradually degrading bounds quality as the
deformation drifts from the built pose.

``refit_scene_bvh`` returns a new :class:`SceneBVH` sharing the original
topology, partition and layout (so treelet ids and addresses — and
therefore the timing model's working sets — are stable across frames).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bvh.scene_bvh import SceneBVH, _prepare_tables
from repro.bvh.wide import WideBVH
from repro.geometry.triangle import TriangleMesh


def refit_wide_bvh(wide: WideBVH, mesh: TriangleMesh) -> WideBVH:
    """A copy of ``wide`` with bounds tightened around ``mesh``'s vertices.

    ``mesh`` must have the same triangle topology as the BVH was built
    over (same indices; only vertex positions may change).
    """
    if mesh.triangle_count != len(wide.prim_order):
        raise ValueError("refit mesh must keep the original triangle count")

    out = WideBVH(wide.width, mesh)
    out.child_count = wide.child_count.copy()
    out.child_index = wide.child_index.copy()
    out.child_is_leaf = wide.child_is_leaf.copy()
    out.child_bounds = wide.child_bounds.copy()
    out.leaf_first_prim = wide.leaf_first_prim.copy()
    out.leaf_prim_count = wide.leaf_prim_count.copy()
    out.prim_order = wide.prim_order.copy()

    tri_bounds = mesh.triangle_bounds()
    tri_lo = tri_bounds[:, 0:3]
    tri_hi = tri_bounds[:, 3:6]

    # Subtree bounds per leaf block.
    leaf_lo = np.empty((wide.leaf_count, 3))
    leaf_hi = np.empty((wide.leaf_count, 3))
    for leaf in range(wide.leaf_count):
        prims = out.leaf_primitives(leaf)
        leaf_lo[leaf] = tri_lo[prims].min(axis=0)
        leaf_hi[leaf] = tri_hi[prims].max(axis=0)

    # Children are always allocated after their parent, so a reverse
    # index sweep sees every child's subtree bounds before its parent.
    node_lo = np.empty((wide.node_count, 3))
    node_hi = np.empty((wide.node_count, 3))
    for node in range(wide.node_count - 1, -1, -1):
        count = int(out.child_count[node])
        lo = np.full(3, np.inf)
        hi = np.full(3, -np.inf)
        for k in range(count):
            child = int(out.child_index[node, k])
            if out.child_is_leaf[node, k]:
                c_lo, c_hi = leaf_lo[child], leaf_hi[child]
            else:
                c_lo, c_hi = node_lo[child], node_hi[child]
            out.child_bounds[node, k, 0:3] = c_lo
            out.child_bounds[node, k, 3:6] = c_hi
            lo = np.minimum(lo, c_lo)
            hi = np.maximum(hi, c_hi)
        node_lo[node] = lo
        node_hi[node] = hi

    from repro.geometry.aabb import AABB

    out.root_bounds = AABB(node_lo[0], node_hi[0])
    return out


def refit_scene_bvh(bvh: SceneBVH, new_vertices: Optional[np.ndarray] = None,
                    mesh: Optional[TriangleMesh] = None) -> SceneBVH:
    """Refit a scene BVH to deformed geometry.

    Pass either ``new_vertices`` (same shape as the original vertex
    array) or a full ``mesh`` with identical topology.  The treelet
    partition and byte layout are reused unchanged.
    """
    if (new_vertices is None) == (mesh is None):
        raise ValueError("pass exactly one of new_vertices or mesh")
    if mesh is None:
        old = bvh.mesh
        new_vertices = np.asarray(new_vertices, dtype=np.float64)
        if new_vertices.shape != old.vertices.shape:
            raise ValueError("new_vertices must match the original vertex array")
        mesh = TriangleMesh(new_vertices, old.indices, old.material_ids)
    wide = refit_wide_bvh(bvh.wide, mesh)
    return _prepare_tables(mesh, wide, bvh.partition, bvh.layout)


def bounds_inflation(original: SceneBVH, refitted: SceneBVH) -> float:
    """Mean relative growth of child-box surface areas after a refit.

    A quality metric: 0.0 means the refit is as tight as the original
    build; large values signal it is time to rebuild.
    """
    def areas(wide):
        b = wide.child_bounds
        d = np.maximum(b[..., 3:6] - b[..., 0:3], 0.0)
        return 2.0 * (
            d[..., 0] * d[..., 1] + d[..., 1] * d[..., 2] + d[..., 2] * d[..., 0]
        )

    a0 = areas(original.wide)
    a1 = areas(refitted.wide)
    mask = a0 > 1e-12
    if not np.any(mask):
        return 0.0
    return float(np.mean(a1[mask] / a0[mask]) - 1.0)
