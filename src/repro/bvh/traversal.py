"""Ray traversal: functional reference and the treelet traversal order.

Two traversal orders are provided, selected by :class:`TraversalOrder`:

``DEPTH_FIRST``
    The classic single-stack closest-hit traversal.

``TREELET``
    The two-stack treelet traversal order of Chou et al. (MICRO 2023),
    which both the paper's baseline GPU and the proposed architecture use:
    children in the ray's *current treelet* go to the current stack,
    children in other treelets are deferred to the *treelet stack*.  A ray
    exhausts its current stack before moving to the next treelet, so all
    work inside a treelet is done while that treelet is (presumably) hot in
    the cache.

The inner loop deliberately runs on plain Python floats and tuples: at the
scale of this reproduction it is ~5x faster than small-numpy-array code,
and the timing simulators execute millions of these steps.

Both the functional result (closest hit) and the per-step *memory access*
information (which BVH item was touched) come out of :func:`single_step`;
the timing models charge each step's item through their cache hierarchy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.batch import (
    intersect_aabb_batch,
    intersect_gaussian_batch,
    intersect_tri_batch,
)

_INV_CLAMP = 1e30
_DET_EPS = 1e-12


class TraversalOrder(enum.Enum):
    """Order in which a ray visits BVH nodes."""

    DEPTH_FIRST = "depth_first"
    TREELET = "treelet"


@dataclass
class HitRecord:
    """Result of a complete traversal."""

    hit: bool
    t: float
    prim_id: int
    nodes_visited: int = 0
    leaf_visits: int = 0
    triangle_tests: int = 0


class RayTraversalState:
    """Mutable per-ray traversal state: stacks, closest hit, counters.

    ``current_stack`` holds ``(item, is_leaf, local_idx, entry_t)`` entries
    for the treelet currently being traversed (or everything, in
    depth-first order).  ``treelet_stack`` holds the same entries tagged
    with their treelet id, deferred until the ray switches treelets.
    """

    __slots__ = (
        "ox", "oy", "oz", "dx", "dy", "dz", "ix", "iy", "iz", "tmin", "tmax",
        "current_stack", "treelet_stack", "current_treelet",
        "t_hit", "hit_prim", "all_hits",
        "nodes_visited", "leaf_visits", "triangle_tests", "culled",
        "order", "ray_id",
    )

    def __init__(
        self,
        origin,
        direction,
        tmin: float,
        order: TraversalOrder,
        ray_id: int = -1,
        tmax: float = float("inf"),
        collect_all_hits: bool = False,
    ):
        self.ox, self.oy, self.oz = float(origin[0]), float(origin[1]), float(origin[2])
        self.dx, self.dy, self.dz = float(direction[0]), float(direction[1]), float(direction[2])
        self.ix = _safe_inv(self.dx)
        self.iy = _safe_inv(self.dy)
        self.iz = _safe_inv(self.dz)
        self.tmin = float(tmin)
        self.tmax = float(tmax)
        self.current_stack: List[Tuple[int, bool, int, float]] = []
        self.treelet_stack: List[Tuple[int, int, bool, int, float]] = []
        self.current_treelet = -1
        # Closest-hit mode shrinks t_hit as hits are found (pruning);
        # collect-all mode keeps it at tmax and records every hit instead
        # (the any-hit semantics general tree-query workloads need).
        self.t_hit = self.tmax
        self.hit_prim = -1
        self.all_hits: Optional[List[Tuple[int, float]]] = (
            [] if collect_all_hits else None
        )
        self.nodes_visited = 0
        self.leaf_visits = 0
        self.triangle_tests = 0
        self.culled = 0
        self.order = order
        self.ray_id = ray_id

    # -- queries ---------------------------------------------------------------

    def finished(self) -> bool:
        """True when no pending work remains on either stack."""
        return not self.current_stack and not self.treelet_stack

    def has_current_work(self) -> bool:
        return bool(self.current_stack)

    def next_treelet(self) -> Optional[int]:
        """Treelet the ray will traverse next (top of the treelet stack)."""
        if self.treelet_stack:
            return self.treelet_stack[-1][0]
        return None

    def pending_treelets(self) -> List[int]:
        """Distinct treelets on the treelet stack, top-most first."""
        seen = []
        for entry in reversed(self.treelet_stack):
            if entry[0] not in seen:
                seen.append(entry[0])
        return seen

    def hit_record(self) -> HitRecord:
        return HitRecord(
            hit=self.hit_prim >= 0,
            t=self.t_hit,
            prim_id=self.hit_prim,
            nodes_visited=self.nodes_visited,
            leaf_visits=self.leaf_visits,
            triangle_tests=self.triangle_tests,
        )

    # -- treelet switching ------------------------------------------------------

    def enter_treelet(self, treelet: int) -> int:
        """Move all deferred entries of ``treelet`` onto the current stack.

        Returns the number of entries moved.  Entry order is preserved so
        near-first pop order survives the detour through the treelet stack.
        """
        moved = []
        kept = []
        for entry in self.treelet_stack:
            if entry[0] == treelet:
                moved.append(entry[1:])
            else:
                kept.append(entry)
        self.treelet_stack = kept
        self.current_stack.extend(moved)
        self.current_treelet = treelet
        return len(moved)

    def advance_treelet(self) -> Optional[int]:
        """Enter the treelet at the top of the treelet stack, if any."""
        nxt = self.next_treelet()
        if nxt is None:
            return None
        self.enter_treelet(nxt)
        return nxt


def _safe_inv(d: float) -> float:
    if d > _DET_EPS:
        return min(1.0 / d, _INV_CLAMP)
    if d < -_DET_EPS:
        return max(1.0 / d, -_INV_CLAMP)
    return _INV_CLAMP if d >= 0 else -_INV_CLAMP


def init_traversal(
    bvh,
    origin,
    direction,
    tmin: float = 1e-4,
    order: TraversalOrder = TraversalOrder.TREELET,
    ray_id: int = -1,
    tmax: float = float("inf"),
    collect_all_hits: bool = False,
) -> RayTraversalState:
    """Create a traversal state positioned at the BVH root.

    ``collect_all_hits`` switches to any-hit semantics: every intersection
    in ``[tmin, tmax]`` is recorded in ``state.all_hits`` and nothing is
    pruned by earlier hits — what general tree-query workloads (point
    containment, database range scans) need.
    """
    state = RayTraversalState(
        origin, direction, tmin, order, ray_id, tmax=tmax,
        collect_all_hits=collect_all_hits,
    )
    root_treelet = bvh.treelet_of_item(0)
    state.current_treelet = root_treelet
    state.current_stack.append((0, False, 0, tmin))
    return state


def pop_next(bvh, state: RayTraversalState, in_treelet_only: bool = False):
    """Pop the next live stack entry, skipping culled ones.

    Returns ``(item, is_leaf, local_idx)`` or ``None`` under the same
    conditions :func:`single_step` returns ``None``.  This is the pop
    half of a step; callers must follow up with the expansion /
    intersection half (``single_step`` does both, the warp batch path
    pops every lane first and then intersects them in one kernel call).
    """
    while True:
        if not state.current_stack:
            if in_treelet_only:
                return None
            if state.order is TraversalOrder.TREELET:
                if state.advance_treelet() is None:
                    return None
                continue
            return None

        item, is_leaf, local_idx, entry_t = state.current_stack.pop()
        if entry_t > state.t_hit:
            state.culled += 1
            continue
        return item, is_leaf, local_idx


def pop_next_recording(bvh, state: RayTraversalState):
    """:func:`pop_next` (TREELET order, non-treelet mode) that also reports
    which treelets were entered along the way.

    Returns ``(popped, chain)`` where ``popped`` is ``(item, is_leaf,
    local_idx)`` or ``None`` when the ray retires, and ``chain`` is the
    tuple of treelet ids :meth:`RayTraversalState.advance_treelet` entered
    during this pop (usually empty).  The SoA plan builder
    (:mod:`repro.gpusim.soa`) uses the chain to replay the exact treelet
    entry points later under the treelet-stationary policy units, where the
    same advances happen through explicit ``enter_treelet`` calls.

    Must mirror :func:`pop_next` exactly — any change to pop semantics has
    to land in both.
    """
    chain = ()
    while True:
        if not state.current_stack:
            nxt = state.advance_treelet()
            if nxt is None:
                return None, chain
            chain += (nxt,)
            continue
        item, is_leaf, local_idx, entry_t = state.current_stack.pop()
        if entry_t > state.t_hit:
            state.culled += 1
            continue
        return (item, is_leaf, local_idx), chain


def single_step(bvh, state: RayTraversalState, in_treelet_only: bool = False):
    """Advance ``state`` by one BVH item visit.

    Returns ``(item, is_leaf, tests)`` describing the visit, or ``None``
    when no step was taken because:

    * the ray has finished entirely, or
    * ``in_treelet_only`` is set and the current stack is exhausted (the
      ray sits at a treelet boundary awaiting re-queueing).

    Culled entries (entry distance beyond the current closest hit) are
    skipped for free, exactly as hardware discards them without a memory
    access.
    """
    popped = pop_next(bvh, state, in_treelet_only)
    if popped is None:
        return None
    item, is_leaf, local_idx = popped

    if is_leaf:
        state.leaf_visits += 1
        tests = _intersect_leaf(bvh, state, local_idx)
        state.triangle_tests += tests
        return (item, True, tests)

    state.nodes_visited += 1
    _expand_node(bvh, state, local_idx)
    return (item, False, 0)


def _expand_node(bvh, state: RayTraversalState, node: int) -> None:
    """Slab-test the node's children and push hits near-first."""
    ox, oy, oz = state.ox, state.oy, state.oz
    ix, iy, iz = state.ix, state.iy, state.iz
    tmin = state.tmin
    t_hit = state.t_hit
    hits = []
    for item, is_leaf, local_idx, child_treelet, b in bvh.node_children[node]:
        t1 = (b[0] - ox) * ix
        t2 = (b[3] - ox) * ix
        if t1 > t2:
            t1, t2 = t2, t1
        near, far = t1, t2
        t1 = (b[1] - oy) * iy
        t2 = (b[4] - oy) * iy
        if t1 > t2:
            t1, t2 = t2, t1
        if t1 > near:
            near = t1
        if t2 < far:
            far = t2
        t1 = (b[2] - oz) * iz
        t2 = (b[5] - oz) * iz
        if t1 > t2:
            t1, t2 = t2, t1
        if t1 > near:
            near = t1
        if t2 < far:
            far = t2
        if near < tmin:
            near = tmin
        if far > t_hit:
            far = t_hit
        if near <= far:
            hits.append((near, item, is_leaf, local_idx, child_treelet))

    _push_hits(state, hits)


def _push_hits(state: RayTraversalState, hits) -> None:
    """Push ``(near, item, is_leaf, local_idx, treelet)`` hits near-first."""
    if not hits:
        return
    # Push far-first so the nearest child is popped first.
    hits.sort(key=lambda h: -h[0])
    if state.order is TraversalOrder.TREELET:
        current = state.current_treelet
        cur_stack = state.current_stack
        tre_stack = state.treelet_stack
        for near, item, is_leaf, local_idx, child_treelet in hits:
            if child_treelet == current:
                cur_stack.append((item, is_leaf, local_idx, near))
            else:
                tre_stack.append((child_treelet, item, is_leaf, local_idx, near))
    else:
        for near, item, is_leaf, local_idx, _child_treelet in hits:
            state.current_stack.append((item, is_leaf, local_idx, near))


# Below these group sizes a numpy kernel call costs more than the lean
# scalar loops (plain-float tables were designed for them), so the batch
# helpers fall back per group.  The outputs are identical either way.
BATCH_MIN_NODE_GROUPS = 16
BATCH_MIN_LEAF_GROUPS = 16


def expand_nodes_batch(bvh, groups: List[Tuple[RayTraversalState, int]]) -> None:
    """Expand many (ray, node) pairs through one vectorized slab test.

    ``groups`` pairs each ray's traversal state with the node it popped.
    All children of all nodes are tested in a single
    :func:`repro.geometry.batch.intersect_aabb_batch` call on the padded
    ``(G, W, 6)`` table slice; the push order, culling and counters match
    :func:`_expand_node` bit for bit.  Small batches take the scalar loop
    (same results, less overhead).
    """
    if len(groups) < BATCH_MIN_NODE_GROUPS:
        for state, node in groups:
            state.nodes_visited += 1
            _expand_node(bvh, state, node)
        return
    tables = bvh.batch_tables()
    node_children = bvh.node_children
    boxes = tables.node_boxes[[node for _, node in groups]]
    rays = np.array(
        [(s.ox, s.oy, s.oz, s.ix, s.iy, s.iz, s.tmin, s.t_hit) for s, _ in groups]
    )
    mask, near = intersect_aabb_batch(
        rays[:, 0:3], rays[:, 3:6], boxes, rays[:, 6], rays[:, 7]
    )
    mask = mask.tolist()
    near = near.tolist()
    for g, (state, node) in enumerate(groups):
        state.nodes_visited += 1
        mask_row = mask[g]
        near_row = near[g]
        # Padding columns beyond the child count are never read: the
        # enumeration runs over the true child list.
        hits = [
            (near_row[k], child[0], child[1], child[2], child[3])
            for k, child in enumerate(node_children[node])
            if mask_row[k]
        ]
        _push_hits(state, hits)


def intersect_leaves_batch(
    bvh, groups: List[Tuple[RayTraversalState, int]]
) -> List[int]:
    """Intersect many (ray, leaf) pairs through one vectorized MT test.

    Closest-hit only (states collecting all hits must take the scalar
    path).  Returns the per-group triangle test counts; hit updates,
    tie-breaking and counters match :func:`_intersect_leaf` bit for bit.
    Small batches take the scalar loop (same results, less overhead).
    """
    if len(groups) < BATCH_MIN_LEAF_GROUPS:
        counts = []
        for state, leaf in groups:
            state.leaf_visits += 1
            tests = _intersect_leaf(bvh, state, leaf)
            state.triangle_tests += tests
            counts.append(tests)
        return counts
    tables = bvh.batch_tables()
    leaf_tris = bvh.leaf_tris
    indices = [leaf for _, leaf in groups]
    rays = np.array(
        [(s.ox, s.oy, s.oz, s.dx, s.dy, s.dz) for s, _ in groups]
    )
    if getattr(bvh, "prim_kind", "triangle") == "gaussian":
        mask, t, _q = intersect_gaussian_batch(
            rays[:, 0:3], rays[:, 3:6],
            tables.leaf_gc[indices], tables.leaf_gm[indices],
            tables.leaf_gq[indices],
        )
        prim_col = -1
    else:
        mask, t, _u, _v = intersect_tri_batch(
            rays[:, 0:3], rays[:, 3:6],
            tables.leaf_v0[indices], tables.leaf_e1[indices],
            tables.leaf_e2[indices],
        )
        prim_col = 3
    mask = mask.tolist()
    t = t.tolist()
    counts = []
    for g, (state, leaf) in enumerate(groups):
        tris = leaf_tris[leaf]
        t_hit = state.t_hit
        hit_prim = state.hit_prim
        tmin = state.tmin
        mask_row = mask[g]
        t_row = t[g]
        # Same scan order and strict-< update as the scalar loop, so the
        # first primitive reaching the minimum distance keeps the hit.
        for k in range(len(tris)):
            if mask_row[k]:
                tk = t_row[k]
                if tmin <= tk < t_hit:
                    t_hit = tk
                    hit_prim = tris[k][prim_col]
        state.t_hit = t_hit
        state.hit_prim = hit_prim
        state.leaf_visits += 1
        state.triangle_tests += len(tris)
        counts.append(len(tris))
    return counts


def _intersect_leaf(bvh, state: RayTraversalState, leaf: int) -> int:
    """Intersect every primitive in the leaf with the scalar kernels.

    Dispatches on the BVH's primitive kind (Moller-Trumbore for
    triangles, peak-response for gaussians).  Closest-hit mode updates
    ``t_hit``/``hit_prim``; collect-all mode appends every in-range hit
    to ``all_hits`` without pruning.
    """
    if getattr(bvh, "prim_kind", "triangle") == "gaussian":
        return _intersect_leaf_gaussian(bvh, state, leaf)
    ox, oy, oz = state.ox, state.oy, state.oz
    dx, dy, dz = state.dx, state.dy, state.dz
    tmin = state.tmin
    all_hits = state.all_hits
    if all_hits is not None:
        return _intersect_leaf_all(bvh, state, leaf, all_hits)
    t_hit = state.t_hit
    hit_prim = state.hit_prim
    tris = bvh.leaf_tris[leaf]
    for v0, e1, e2, prim in tris:
        px = dy * e2[2] - dz * e2[1]
        py = dz * e2[0] - dx * e2[2]
        pz = dx * e2[1] - dy * e2[0]
        det = e1[0] * px + e1[1] * py + e1[2] * pz
        if -_DET_EPS < det < _DET_EPS:
            continue
        inv = 1.0 / det
        tx = ox - v0[0]
        ty = oy - v0[1]
        tz = oz - v0[2]
        u = (tx * px + ty * py + tz * pz) * inv
        if u < 0.0 or u > 1.0:
            continue
        qx = ty * e1[2] - tz * e1[1]
        qy = tz * e1[0] - tx * e1[2]
        qz = tx * e1[1] - ty * e1[0]
        v = (dx * qx + dy * qy + dz * qz) * inv
        if v < 0.0 or u + v > 1.0:
            continue
        t = (e2[0] * qx + e2[1] * qy + e2[2] * qz) * inv
        if tmin <= t < t_hit:
            t_hit = t
            hit_prim = prim
    state.t_hit = t_hit
    state.hit_prim = hit_prim
    return len(tris)


def _intersect_leaf_all(bvh, state: RayTraversalState, leaf: int, all_hits) -> int:
    """Collect-all-hits variant: record every hit in [tmin, tmax]."""
    ox, oy, oz = state.ox, state.oy, state.oz
    dx, dy, dz = state.dx, state.dy, state.dz
    tmin = state.tmin
    tmax = state.tmax
    tris = bvh.leaf_tris[leaf]
    for v0, e1, e2, prim in tris:
        px = dy * e2[2] - dz * e2[1]
        py = dz * e2[0] - dx * e2[2]
        pz = dx * e2[1] - dy * e2[0]
        det = e1[0] * px + e1[1] * py + e1[2] * pz
        if -_DET_EPS < det < _DET_EPS:
            continue
        inv = 1.0 / det
        tx = ox - v0[0]
        ty = oy - v0[1]
        tz = oz - v0[2]
        u = (tx * px + ty * py + tz * pz) * inv
        if u < 0.0 or u > 1.0:
            continue
        qx = ty * e1[2] - tz * e1[1]
        qy = tz * e1[0] - tx * e1[2]
        qz = tx * e1[1] - ty * e1[0]
        v = (dx * qx + dy * qy + dz * qz) * inv
        if v < 0.0 or u + v > 1.0:
            continue
        t = (e2[0] * qx + e2[1] * qy + e2[2] * qz) * inv
        if tmin <= t <= tmax:
            all_hits.append((prim, t))
    return len(tris)


def _intersect_leaf_gaussian(bvh, state: RayTraversalState, leaf: int) -> int:
    """Peak-response test every gaussian in the leaf.

    Leaf rows are ``(cx, cy, cz, m00, m01, m02, m11, m12, m22, qmax,
    prim)``.  A candidate passes when the squared Mahalanobis distance
    at the ray's peak-response point stays within the gaussian's
    precomputed log-space opacity threshold; the ``t``-window then
    decides closest-hit vs collect-all exactly as the triangle loops do.
    Every float operation replicates
    :func:`repro.geometry.batch.intersect_gaussian_batch` in order and
    association, so the two interchange mid-simulation.
    """
    ox, oy, oz = state.ox, state.oy, state.oz
    dx, dy, dz = state.dx, state.dy, state.dz
    tmin = state.tmin
    all_hits = state.all_hits
    tmax = state.tmax
    t_hit = state.t_hit
    hit_prim = state.hit_prim
    rows = bvh.leaf_tris[leaf]
    for cx, cy, cz, m00, m01, m02, m11, m12, m22, qmax, prim in rows:
        wx = ox - cx
        wy = oy - cy
        wz = oz - cz
        mdx = m00 * dx + m01 * dy + m02 * dz
        mdy = m01 * dx + m11 * dy + m12 * dz
        mdz = m02 * dx + m12 * dy + m22 * dz
        dmd = dx * mdx + dy * mdy + dz * mdz
        if dmd < _DET_EPS:
            continue
        inv = 1.0 / dmd
        wmd = wx * mdx + wy * mdy + wz * mdz
        t = -(wmd * inv)
        mwx = m00 * wx + m01 * wy + m02 * wz
        mwy = m01 * wx + m11 * wy + m12 * wz
        mwz = m02 * wx + m12 * wy + m22 * wz
        wmw = wx * mwx + wy * mwy + wz * mwz
        q = wmw - (wmd * wmd) * inv
        if q > qmax:
            continue
        if all_hits is not None:
            if tmin <= t <= tmax:
                all_hits.append((prim, t))
        elif tmin <= t < t_hit:
            t_hit = t
            hit_prim = prim
    if all_hits is None:
        state.t_hit = t_hit
        state.hit_prim = hit_prim
    return len(rows)


def full_traverse(
    bvh,
    origin,
    direction,
    tmin: float = 1e-4,
    order: TraversalOrder = TraversalOrder.TREELET,
) -> HitRecord:
    """Run a ray to completion and return its closest hit."""
    state = init_traversal(bvh, origin, direction, tmin, order)
    while single_step(bvh, state) is not None:
        pass
    return state.hit_record()


def trace_access_sequence(
    bvh,
    origin,
    direction,
    tmin: float = 1e-4,
    order: TraversalOrder = TraversalOrder.TREELET,
) -> Tuple[HitRecord, List[Tuple[int, bool]]]:
    """Traverse and also record the (item, is_leaf) visit sequence.

    The analytical model of Section 2.4 consumes these sequences.
    """
    state = init_traversal(bvh, origin, direction, tmin, order)
    visits: List[Tuple[int, bool]] = []
    while True:
        step = single_step(bvh, state)
        if step is None:
            break
        visits.append((step[0], step[1]))
    return state.hit_record(), visits
