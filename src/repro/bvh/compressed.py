"""Compressed-leaf encoding (Benthin et al., HPG 2018 style).

Vulkan-Sim repacks the Embree BVH into a compressed-leaf format; the
compression matters to the reproduction because it sets the *byte size* of
leaf blocks, which in turn drives treelet sizes and memory traffic.

We implement an honest codec: each leaf block stores a local grid origin
and scale, and every vertex is quantized to ``bits`` per component.  The
codec round-trips with a bounded error (half a quantization step), verified
by tests; the scene pipeline uses it to size leaf bytes and can also decode
quantized geometry for error analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class CompressedLeafCodec:
    """Quantizes leaf-block vertices to a local fixed-point grid.

    Attributes
    ----------
    bits:
        Bits per vertex component (Benthin et al. use 8-16 depending on
        variant; 16 keeps error visually negligible).
    header_bytes:
        Per-leaf header: grid origin (3 x f32), scale (f32), count.
    """

    bits: int = 16
    header_bytes: int = 20

    def __post_init__(self):
        if not 4 <= self.bits <= 24:
            raise ValueError("bits must be in [4, 24]")

    # -- sizing ---------------------------------------------------------------

    def triangle_bytes(self) -> int:
        """Serialized size of one triangle: 9 quantized components, padded."""
        raw_bits = 9 * self.bits
        return (raw_bits + 7) // 8

    def leaf_bytes(self, triangle_count: int) -> int:
        """Full serialized size of a leaf block with ``triangle_count`` tris."""
        if triangle_count < 0:
            raise ValueError("triangle_count must be non-negative")
        return self.header_bytes + triangle_count * self.triangle_bytes()

    def compression_ratio(self, uncompressed_triangle_bytes: int = 36) -> float:
        """Bytes saved vs an uncompressed ``3 x 3 x f32`` triangle."""
        return self.triangle_bytes() / float(uncompressed_triangle_bytes)

    # -- round-trip codec -----------------------------------------------------

    def encode(self, triangles: np.ndarray) -> Tuple[np.ndarray, np.ndarray, float]:
        """Quantize ``(K, 3, 3)`` triangles to grid coordinates.

        Returns ``(codes, origin, scale)`` where ``codes`` is an int32 array
        of the same shape.
        """
        triangles = np.asarray(triangles, dtype=np.float64).reshape(-1, 3, 3)
        if triangles.size == 0:
            return np.zeros((0, 3, 3), dtype=np.int32), np.zeros(3), 1.0
        points = triangles.reshape(-1, 3)
        origin = points.min(axis=0)
        extent = float((points.max(axis=0) - origin).max())
        levels = (1 << self.bits) - 1
        scale = extent / levels if extent > 0 else 1.0
        codes = np.rint((triangles - origin) / scale).astype(np.int64)
        codes = np.clip(codes, 0, levels).astype(np.int32)
        return codes, origin, scale

    def decode(self, codes: np.ndarray, origin: np.ndarray, scale: float) -> np.ndarray:
        """Dequantize grid coordinates back to ``(K, 3, 3)`` vertices."""
        return np.asarray(codes, dtype=np.float64) * scale + np.asarray(origin)

    def max_error(self, triangles: np.ndarray) -> float:
        """Worst-case per-component round-trip error for these triangles."""
        codes, origin, scale = self.encode(triangles)
        decoded = self.decode(codes, origin, scale)
        if decoded.size == 0:
            return 0.0
        return float(np.abs(decoded - np.asarray(triangles)).max())

    def error_bound(self, triangles: np.ndarray) -> float:
        """Analytic bound on round-trip error: half a quantization step."""
        triangles = np.asarray(triangles, dtype=np.float64).reshape(-1, 3, 3)
        if triangles.size == 0:
            return 0.0
        points = triangles.reshape(-1, 3)
        extent = float((points.max(axis=0) - points.min(axis=0)).max())
        levels = (1 << self.bits) - 1
        return 0.5 * (extent / levels) if extent > 0 else 0.0
