"""Binary save/load of built acceleration structures.

Building a large scene's BVH (SAH build + collapse + partition + layout
+ table preparation) dominates cold-start time, so built structures can
be cached to disk: one ``.npz`` holds every array, and the derived
Python tables are re-prepared on load (they are fast to rebuild and
float-exactly determined by the arrays).

The format is versioned; loading a mismatched version raises rather
than mis-reading.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro import faults
from repro.bvh.layout import BVHLayout, LayoutConfig
from repro.bvh.scene_bvh import SceneBVH, _prepare_tables
from repro.bvh.treelets import TreeletPartition
from repro.bvh.wide import WideBVH
from repro.errors import BVHError
from repro.geometry.triangle import TriangleMesh

FORMAT_VERSION = 2


def save_scene_bvh(bvh: SceneBVH, path: Union[str, Path]) -> None:
    """Serialize ``bvh`` (mesh + wide BVH + partition + layout) to ``path``."""
    layout_config = bvh.layout.config
    # Treelet member lists are ragged; store flattened + offsets.
    member_offsets = np.zeros(bvh.partition.treelet_count + 1, dtype=np.int64)
    for tid, members in enumerate(bvh.partition.treelet_items):
        member_offsets[tid + 1] = member_offsets[tid] + len(members)
    member_flat = np.concatenate(
        [np.asarray(m, dtype=np.int64) for m in bvh.partition.treelet_items]
    ) if bvh.partition.treelet_count else np.zeros(0, dtype=np.int64)

    np.savez_compressed(
        path,
        format_version=np.int64(FORMAT_VERSION),
        # mesh
        vertices=bvh.mesh.vertices,
        indices=bvh.mesh.indices,
        material_ids=bvh.mesh.material_ids,
        # wide BVH
        width=np.int64(bvh.wide.width),
        child_count=bvh.wide.child_count,
        child_index=bvh.wide.child_index,
        child_is_leaf=bvh.wide.child_is_leaf,
        child_bounds=bvh.wide.child_bounds,
        leaf_first_prim=bvh.wide.leaf_first_prim,
        leaf_prim_count=bvh.wide.leaf_prim_count,
        prim_order=bvh.wide.prim_order,
        root_bounds=bvh.wide.root_bounds.as_array(),
        # partition
        treelet_of_item=bvh.partition.treelet_of_item,
        treelet_bytes=np.asarray(bvh.partition.treelet_bytes, dtype=np.int64),
        member_flat=member_flat,
        member_offsets=member_offsets,
        budget_bytes=np.int64(bvh.partition.budget_bytes),
        # layout
        item_address=bvh.layout.item_address,
        item_bytes=bvh.layout.item_bytes,
        treelet_base=bvh.layout.treelet_base,
        treelet_sizes=bvh.layout.treelet_sizes,
        total_bytes=np.int64(bvh.layout.total_bytes),
        layout_params=np.asarray(
            [
                layout_config.node_bytes,
                layout_config.triangle_bytes,
                layout_config.leaf_header_bytes,
                layout_config.line_bytes,
                layout_config.base_address,
            ],
            dtype=np.int64,
        ),
    )
    # np.savez appends ``.npz`` when the path has no suffix; the fault
    # must corrupt the file actually written.
    written = Path(path)
    if written.suffix != ".npz" and not written.exists():
        written = written.with_suffix(written.suffix + ".npz")
    spec = faults.should_fire(faults.BVH_TRUNCATE, written.name)
    if spec is not None:
        faults.corrupt_file(
            written,
            faults.rng(spec, written.name),
            mode=spec.payload.get("mode", "truncate"),
        )


def load_scene_bvh(path: Union[str, Path]) -> SceneBVH:
    """Load a structure written by :func:`save_scene_bvh`.

    Raises :class:`BVHError` (a ``ValueError``) on a version mismatch or
    a corrupt / truncated file.
    """
    path = Path(path)
    try:
        return _load_scene_bvh(path)
    except BVHError:
        raise
    except Exception as exc:
        raise BVHError(
            f"corrupt or truncated BVH file {path.name}: {exc}"
        ) from exc


def _load_scene_bvh(path: Path) -> SceneBVH:
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise BVHError(
                f"BVH file format v{version}; this build reads v{FORMAT_VERSION}"
            )
        mesh = TriangleMesh(
            data["vertices"], data["indices"], data["material_ids"]
        )

        wide = WideBVH(int(data["width"]), mesh)
        wide.child_count = data["child_count"]
        wide.child_index = data["child_index"]
        wide.child_is_leaf = data["child_is_leaf"]
        wide.child_bounds = data["child_bounds"]
        wide.leaf_first_prim = data["leaf_first_prim"]
        wide.leaf_prim_count = data["leaf_prim_count"]
        wide.prim_order = data["prim_order"]
        from repro.geometry.aabb import AABB

        rb = data["root_bounds"]
        wide.root_bounds = AABB(rb[:3], rb[3:])

        offsets = data["member_offsets"]
        flat = data["member_flat"]
        treelet_items = [
            flat[offsets[t] : offsets[t + 1]].tolist()
            for t in range(len(offsets) - 1)
        ]
        partition = TreeletPartition(
            treelet_of_item=data["treelet_of_item"],
            treelet_items=treelet_items,
            treelet_bytes=data["treelet_bytes"].tolist(),
            budget_bytes=int(data["budget_bytes"]),
            node_count=wide.node_count,
        )

        params = data["layout_params"]
        config = LayoutConfig(
            node_bytes=int(params[0]),
            triangle_bytes=int(params[1]),
            leaf_header_bytes=int(params[2]),
            line_bytes=int(params[3]),
            base_address=int(params[4]),
        )
        layout = BVHLayout(
            item_address=data["item_address"],
            item_bytes=data["item_bytes"],
            treelet_base=data["treelet_base"],
            treelet_sizes=data["treelet_sizes"],
            total_bytes=int(data["total_bytes"]),
            config=config,
        )
    return _prepare_tables(mesh, wide, partition, layout)
