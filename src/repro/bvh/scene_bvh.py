"""SceneBVH: the fully-prepared acceleration structure.

Bundles the wide BVH, treelet partition and memory layout, and precomputes
flattened per-node / per-leaf lookup tables so the traversal inner loop
(the hottest code in the whole reproduction) runs on plain Python floats
instead of small numpy arrays.

The precomputed tables are:

``node_children[node]``
    list of ``(item_id, is_leaf, local_index, treelet_id, bounds6)`` for
    each valid child, where ``bounds6`` is a 6-tuple of floats.
``leaf_tris[leaf]``
    list of ``(v0, e1, e2, prim_id)`` tuples ready for Moller-Trumbore.
``item_lines[item]``
    tuple of cache-line ids covering the item's serialized bytes.
``treelet_of_item[item]`` / ``item_address[item]``
    from the partition / layout.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.bvh.builder import BuildConfig, build_binary_bvh
from repro.bvh.layout import BVHLayout, LayoutConfig, build_layout
from repro.bvh.treelets import TreeletPartition, partition_treelets
from repro.bvh.wide import WideBVH, collapse_to_wide
from repro.geometry.triangle import TriangleMesh


class BatchTables:
    """Padded numpy mirrors of the traversal tables for the batch kernels.

    ``node_boxes[node]`` is ``(W, 6)`` child bounds (same row order as
    ``node_children[node]``, zero-padded past the child count) and
    ``leaf_v0/e1/e2[leaf]`` are ``(T, 3)`` triangle data (zero-padded —
    degenerate, so the triangle kernel rejects padding rows by itself).
    Fixed-width padding lets a warp's worth of nodes or leaves be gathered
    with one fancy index instead of per-step concatenation.

    On a gaussian BVH the leaf mirrors are ``leaf_gc`` (centers,
    ``(T, 3)``), ``leaf_gm`` (precision upper-triangles, ``(T, 6)``) and
    ``leaf_gq`` (hit thresholds, ``(T,)``) instead; padding rows carry a
    zero matrix and ``qmax = -1`` — doubly self-rejecting in the
    gaussian kernel.
    """

    __slots__ = ("node_boxes", "leaf_v0", "leaf_e1", "leaf_e2",
                 "leaf_gc", "leaf_gm", "leaf_gq")

    def __init__(self, node_children, leaf_tris, prim_kind="triangle"):
        width = max((len(c) for c in node_children), default=1)
        self.node_boxes = np.zeros((len(node_children), max(width, 1), 6))
        for node, children in enumerate(node_children):
            for k, child in enumerate(children):
                self.node_boxes[node, k] = child[4]
        depth = max((len(t) for t in leaf_tris), default=1)
        if prim_kind == "gaussian":
            self.leaf_v0 = self.leaf_e1 = self.leaf_e2 = None
            self.leaf_gc = np.zeros((len(leaf_tris), max(depth, 1), 3))
            self.leaf_gm = np.zeros((len(leaf_tris), max(depth, 1), 6))
            self.leaf_gq = np.full((len(leaf_tris), max(depth, 1)), -1.0)
            for leaf, prims in enumerate(leaf_tris):
                for k, row in enumerate(prims):
                    self.leaf_gc[leaf, k] = row[0:3]
                    self.leaf_gm[leaf, k] = row[3:9]
                    self.leaf_gq[leaf, k] = row[9]
        else:
            self.leaf_gc = self.leaf_gm = self.leaf_gq = None
            shape = (len(leaf_tris), max(depth, 1), 3)
            self.leaf_v0 = np.zeros(shape)
            self.leaf_e1 = np.zeros(shape)
            self.leaf_e2 = np.zeros(shape)
            for leaf, tris in enumerate(leaf_tris):
                for k, (v0, e1, e2, _prim) in enumerate(tris):
                    self.leaf_v0[leaf, k] = v0
                    self.leaf_e1[leaf, k] = e1
                    self.leaf_e2[leaf, k] = e2


@dataclass
class SceneBVH:
    """Acceleration structure plus all tables the simulators need."""

    mesh: TriangleMesh
    wide: WideBVH
    partition: TreeletPartition
    layout: BVHLayout
    node_children: List[List[Tuple[int, bool, int, int, Tuple[float, ...]]]]
    leaf_tris: List[List[Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[float, ...], int]]]
    item_lines: List[Tuple[int, ...]]
    treelet_lines: List[Tuple[int, ...]]
    # Lazily-built numpy mirror of node_children / leaf_tris consumed by
    # the batch intersection kernels (see batch_tables()).
    batch: Optional[BatchTables] = None
    # What the leaves hold: "triangle" (leaf_tris rows are (v0, e1, e2,
    # prim)) or "gaussian" (rows are (cx, cy, cz, m00, m01, m02, m11,
    # m12, m22, qmax, prim)).  Traversal and the leaf-cost model
    # dispatch on this.
    prim_kind: str = "triangle"

    @property
    def node_count(self) -> int:
        return self.wide.node_count

    @property
    def leaf_count(self) -> int:
        return self.wide.leaf_count

    @property
    def treelet_count(self) -> int:
        return self.partition.treelet_count

    @property
    def root_treelet(self) -> int:
        return self.partition.treelet_of_node(0)

    def treelet_of_item(self, item: int) -> int:
        return int(self.partition.treelet_of_item[item])

    def leaf_item(self, leaf: int) -> int:
        """Global item id of leaf block ``leaf``."""
        return self.wide.node_count + leaf

    def size_megabytes(self) -> float:
        return self.layout.size_megabytes()

    def batch_tables(self) -> BatchTables:
        """The padded numpy mirror of the traversal tables.

        Built once on first use from the exact float values the scalar
        tables hold, so the batch kernels see bit-identical inputs.
        """
        if self.batch is None:
            self.batch = BatchTables(
                self.node_children, self.leaf_tris, self.prim_kind
            )
        return self.batch

    def summary(self) -> dict:
        """Scene statistics in the shape of the paper's Table 2 rows."""
        return {
            "triangles": self.mesh.triangle_count,
            "bvh_mb": self.size_megabytes(),
            "nodes": self.node_count,
            "leaves": self.leaf_count,
            "treelets": self.treelet_count,
        }


def build_scene_bvh(
    mesh: TriangleMesh,
    build_config: BuildConfig = BuildConfig(),
    layout_config: LayoutConfig = LayoutConfig(),
    treelet_budget_bytes: int = 8 * 1024,
    width: int = 4,
    compressed_leaves: bool = False,
) -> SceneBVH:
    """Full pipeline: SAH build -> wide collapse -> treelets -> layout -> tables.

    ``compressed_leaves=True`` serializes leaf blocks in the Benthin-style
    compressed format (smaller leaves, more geometry per treelet); the
    traversal still tests full-precision triangles — the compression is
    lossless for timing purposes and its geometric error is bounded by the
    codec (see :mod:`repro.bvh.compressed`).
    """
    if compressed_leaves:
        from repro.bvh.layout import compressed_layout_config

        layout_config = compressed_layout_config(base=layout_config)
    if getattr(mesh, "kind", "triangle") == "gaussian":
        if compressed_leaves:
            raise ValueError("compressed leaves are a triangle codec; "
                             "gaussian sets are stored uncompressed")
        if layout_config == LayoutConfig():
            # A gaussian record is fatter than a triangle: center (12) +
            # precision upper triangle (24) + opacity (4) + color (12) +
            # padding at float32 = 64 bytes per primitive.
            layout_config = dataclasses.replace(layout_config, triangle_bytes=64)
    binary = build_binary_bvh(mesh, build_config)
    wide = collapse_to_wide(binary, width)
    partition = partition_treelets(
        wide,
        budget_bytes=treelet_budget_bytes,
        node_bytes=layout_config.node_bytes,
        triangle_bytes=layout_config.triangle_bytes,
        leaf_header_bytes=layout_config.leaf_header_bytes,
    )
    layout = build_layout(wide, partition, layout_config)
    return _prepare_tables(mesh, wide, partition, layout)


def _prepare_tables(
    mesh: TriangleMesh,
    wide: WideBVH,
    partition: TreeletPartition,
    layout: BVHLayout,
) -> SceneBVH:
    node_children = []
    for node in range(wide.node_count):
        count = int(wide.child_count[node])
        children = []
        for k in range(count):
            child = int(wide.child_index[node, k])
            is_leaf = bool(wide.child_is_leaf[node, k])
            item = child + wide.node_count if is_leaf else child
            bounds = tuple(float(v) for v in wide.child_bounds[node, k])
            children.append((item, is_leaf, child, int(partition.treelet_of_item[item]), bounds))
        node_children.append(children)

    prim_kind = getattr(mesh, "kind", "triangle")
    leaf_tris = []
    if prim_kind == "gaussian":
        centers = mesh.centers
        precisions = mesh.precisions
        qmax = mesh.qmax
        for leaf in range(wide.leaf_count):
            prims = wide.leaf_primitives(leaf)
            rows = []
            for prim in prims:
                c = centers[prim]
                m = precisions[prim]
                rows.append((
                    float(c[0]), float(c[1]), float(c[2]),
                    float(m[0]), float(m[1]), float(m[2]),
                    float(m[3]), float(m[4]), float(m[5]),
                    float(qmax[prim]), int(prim),
                ))
            leaf_tris.append(rows)
    else:
        vertices = wide.mesh.vertices
        indices = wide.mesh.indices
        for leaf in range(wide.leaf_count):
            prims = wide.leaf_primitives(leaf)
            tris = []
            for prim in prims:
                p = vertices[indices[prim]]
                v0 = (float(p[0, 0]), float(p[0, 1]), float(p[0, 2]))
                e1 = (
                    float(p[1, 0] - p[0, 0]),
                    float(p[1, 1] - p[0, 1]),
                    float(p[1, 2] - p[0, 2]),
                )
                e2 = (
                    float(p[2, 0] - p[0, 0]),
                    float(p[2, 1] - p[0, 1]),
                    float(p[2, 2] - p[0, 2]),
                )
                tris.append((v0, e1, e2, int(prim)))
            leaf_tris.append(tris)

    item_lines = [tuple(layout.item_lines(item)) for item in range(len(layout.item_address))]
    treelet_lines = [tuple(layout.treelet_lines(t)) for t in range(partition.treelet_count)]

    return SceneBVH(
        mesh=mesh,
        wide=wide,
        partition=partition,
        layout=layout,
        node_children=node_children,
        leaf_tris=leaf_tris,
        item_lines=item_lines,
        treelet_lines=treelet_lines,
        prim_kind=prim_kind,
    )
