"""Treelet partitioning of a wide BVH.

A *treelet* is a connected subtree of BVH items (wide nodes and leaf blocks)
whose serialized byte size fits a budget.  The paper (following Aila &
Karras 2010 and using the partitioning code of Chou et al., MICRO 2023)
sizes treelets to half the L1 data cache — 8 KB for the 16 KB L1 in
Table 1 — so one treelet can be processed while the next is preloaded.

The partitioner works on the unified *item graph*: item ids
``0 .. node_count-1`` are wide nodes and ``node_count .. node_count+L-1``
are leaf blocks.  Two strategies are provided (see
:func:`partition_treelets`): DFS-range bin packing (default, near-100%
fill) and Aila-style greedy subtree growth.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.bvh.wide import WideBVH


@dataclass
class TreeletPartition:
    """Assignment of BVH items to treelets.

    Attributes
    ----------
    treelet_of_item:
        ``(num_items,)`` treelet id per item (wide nodes then leaf blocks).
    treelet_items:
        Per-treelet list of item ids in insertion (traversal-friendly) order.
    treelet_bytes:
        Serialized size of each treelet in bytes.
    budget_bytes:
        The byte budget the partition was built with.
    node_count:
        Number of wide nodes (items >= node_count are leaf blocks).
    """

    treelet_of_item: np.ndarray
    treelet_items: List[List[int]]
    treelet_bytes: List[int]
    budget_bytes: int
    node_count: int

    @property
    def treelet_count(self) -> int:
        return len(self.treelet_items)

    def treelet_of_node(self, node: int) -> int:
        """Treelet id of wide node ``node``."""
        return int(self.treelet_of_item[node])

    def treelet_of_leaf(self, leaf: int) -> int:
        """Treelet id of leaf block ``leaf``."""
        return int(self.treelet_of_item[self.node_count + leaf])

    def stats(self) -> Dict[str, float]:
        """Summary statistics used by reports and tests."""
        sizes = np.asarray(self.treelet_bytes, dtype=np.float64)
        items = np.asarray([len(t) for t in self.treelet_items], dtype=np.float64)
        return {
            "treelet_count": float(self.treelet_count),
            "mean_bytes": float(sizes.mean()),
            "max_bytes": float(sizes.max()),
            "mean_items": float(items.mean()),
            "fill_ratio": float(sizes.mean() / self.budget_bytes),
        }


@dataclass
class _Frontier:
    """Max-heap of candidate items keyed by surface area."""

    entries: list = field(default_factory=list)
    counter: int = 0

    def push(self, area: float, item: int) -> None:
        heapq.heappush(self.entries, (-area, self.counter, item))
        self.counter += 1

    def pop(self) -> int:
        return heapq.heappop(self.entries)[2]

    def __bool__(self) -> bool:
        return bool(self.entries)


def item_sizes(
    wide: WideBVH, node_bytes: int, triangle_bytes: int, leaf_header_bytes: int
) -> np.ndarray:
    """Serialized byte size of every item (wide nodes, then leaf blocks)."""
    sizes = np.empty(wide.node_count + wide.leaf_count, dtype=np.int64)
    sizes[: wide.node_count] = node_bytes
    sizes[wide.node_count :] = leaf_header_bytes + triangle_bytes * wide.leaf_prim_count
    return sizes


def _item_children(wide: WideBVH, item: int) -> List[int]:
    if item >= wide.node_count:
        return []  # leaf blocks are terminal
    count = int(wide.child_count[item])
    out = []
    for k in range(count):
        child = int(wide.child_index[item, k])
        if wide.child_is_leaf[item, k]:
            out.append(wide.node_count + child)
        else:
            out.append(child)
    return out


def _item_area(wide: WideBVH, item: int) -> float:
    """Surface area of an item, used to prioritize absorption order."""
    if item < wide.node_count:
        bounds = wide.child_bounds[item, : int(wide.child_count[item])]
        lo = bounds[:, :3].min(axis=0)
        hi = bounds[:, 3:].max(axis=0)
    else:
        leaf = item - wide.node_count
        tri = wide.leaf_triangles(leaf).reshape(-1, 3)
        if len(tri) == 0:
            return 0.0
        lo = tri.min(axis=0)
        hi = tri.max(axis=0)
    d = np.maximum(hi - lo, 0.0)
    return float(2.0 * (d[0] * d[1] + d[1] * d[2] + d[2] * d[0]))


def partition_treelets(
    wide: WideBVH,
    budget_bytes: int = 8 * 1024,
    node_bytes: int = 64,
    triangle_bytes: int = 48,
    leaf_header_bytes: int = 16,
    strategy: str = "pack",
) -> TreeletPartition:
    """Partition ``wide`` into treelets of at most ``budget_bytes`` each.

    Two strategies are available:

    ``"pack"`` (default)
        Walk the item graph in DFS order and bin-pack consecutive items
        into treelets.  Every treelet is a contiguous DFS range, which is
        exactly what "treelets can be packed together in memory"
        (Section 6.5) requires, and fills each treelet to ~100% of the
        budget, so fetching a treelet moves ``budget_bytes`` of useful
        tree.  DFS ranges are spatially coherent even though they are not
        always single rooted subtrees.

    ``"subtree"``
        Aila & Karras-style greedy growth: each treelet is a connected
        subtree grown largest-surface-area-first from a root node.
        Interior treelets fill well; tail treelets near the leaves are
        small (the known fragmentation of subtree treelets).

    In both strategies a node's weight includes the bytes of its leaf-block
    children and those leaf blocks land in the node's treelet ("subtree")
    or immediately after it in DFS order ("pack") — a leaf's triangle data
    is fetched while traversing its parent, so splitting them apart would
    only add traffic.  A single item larger than the whole budget becomes
    (or overflows) its own treelet; it cannot be split further.
    """
    if budget_bytes <= 0:
        raise ValueError("budget_bytes must be positive")
    if strategy == "pack":
        return _partition_pack(
            wide, budget_bytes, node_bytes, triangle_bytes, leaf_header_bytes
        )
    if strategy != "subtree":
        raise ValueError(f"unknown strategy {strategy!r}")
    sizes = item_sizes(wide, node_bytes, triangle_bytes, leaf_header_bytes)
    num_items = len(sizes)

    # Per-node weight: the node plus all its leaf children.
    node_weight = np.empty(wide.node_count, dtype=np.int64)
    for node in range(wide.node_count):
        weight = int(sizes[node])
        count = int(wide.child_count[node])
        for k in range(count):
            if wide.child_is_leaf[node, k]:
                leaf_item = wide.node_count + int(wide.child_index[node, k])
                weight += int(sizes[leaf_item])
        node_weight[node] = weight

    treelet_of = np.full(num_items, -1, dtype=np.int64)
    treelet_items: List[List[int]] = []
    treelet_bytes: List[int] = []

    def node_children_nodes(node: int) -> List[int]:
        return [c for c in _item_children(wide, node) if c < wide.node_count]

    def assign(node: int, tid: int, members: List[int]) -> int:
        """Assign a node and its leaf children; return bytes consumed."""
        treelet_of[node] = tid
        members.append(node)
        used = int(sizes[node])
        count = int(wide.child_count[node])
        for k in range(count):
            if wide.child_is_leaf[node, k]:
                leaf_item = wide.node_count + int(wide.child_index[node, k])
                treelet_of[leaf_item] = tid
                members.append(leaf_item)
                used += int(sizes[leaf_item])
        return used

    # Roots of treelets not yet grown, in discovery order (BFS over the
    # treelet graph keeps treelet ids roughly level-ordered, matching how the
    # hardware encounters them during traversal).
    pending_roots: List[int] = [0]
    while pending_roots:
        root = pending_roots.pop(0)
        if treelet_of[root] >= 0:  # pragma: no cover - defensive
            continue
        tid = len(treelet_items)
        members: List[int] = []
        used = 0
        frontier = _Frontier()
        frontier.push(_item_area(wide, root), root)
        while frontier:
            node = frontier.pop()
            if treelet_of[node] >= 0:  # pragma: no cover - defensive
                continue
            if members and used + node_weight[node] > budget_bytes:
                # Does not fit: becomes the root of a later treelet.
                pending_roots.append(node)
                continue
            used += assign(node, tid, members)
            for child in node_children_nodes(node):
                if treelet_of[child] < 0:
                    frontier.push(_item_area(wide, child), child)
        treelet_items.append(members)
        treelet_bytes.append(used)

    if np.any(treelet_of < 0):
        raise AssertionError("partition left unassigned items")
    return TreeletPartition(
        treelet_of_item=treelet_of,
        treelet_items=treelet_items,
        treelet_bytes=treelet_bytes,
        budget_bytes=budget_bytes,
        node_count=wide.node_count,
    )


def _partition_pack(
    wide: WideBVH,
    budget_bytes: int,
    node_bytes: int,
    triangle_bytes: int,
    leaf_header_bytes: int,
) -> TreeletPartition:
    """DFS-order bin packing: contiguous, nearly full treelets."""
    sizes = item_sizes(wide, node_bytes, triangle_bytes, leaf_header_bytes)
    num_items = len(sizes)
    treelet_of = np.full(num_items, -1, dtype=np.int64)
    treelet_items: List[List[int]] = []
    treelet_bytes: List[int] = []

    current: List[int] = []
    used = 0

    def flush():
        nonlocal current, used
        if current:
            treelet_items.append(current)
            treelet_bytes.append(used)
            current = []
            used = 0

    # Iterative DFS over the item graph; children pushed in reverse so the
    # first child is visited first, keeping ranges traversal-coherent.
    stack: List[int] = [0]
    while stack:
        item = stack.pop()
        size = int(sizes[item])
        if current and used + size > budget_bytes:
            flush()
        treelet_of[item] = len(treelet_items)
        current.append(item)
        used += size
        if item < wide.node_count:
            for child in reversed(_item_children(wide, item)):
                stack.append(child)
    flush()

    if np.any(treelet_of < 0):
        raise AssertionError("pack partition left unassigned items")
    return TreeletPartition(
        treelet_of_item=treelet_of,
        treelet_items=treelet_items,
        treelet_bytes=treelet_bytes,
        budget_bytes=budget_bytes,
        node_count=wide.node_count,
    )
