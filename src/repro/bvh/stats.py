"""BVH quality statistics.

``describe`` summarizes an acceleration structure the way builder papers
report them: node/leaf counts, depth distribution, leaf occupancy, SAH
cost and treelet packing — used by the treelet-explorer example, the
Table 2 reporting and the test suite's quality checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.bvh.scene_bvh import SceneBVH


@dataclass
class BVHStatistics:
    """Quality summary of one acceleration structure."""

    node_count: int
    leaf_count: int
    triangle_count: int
    max_depth: int
    mean_depth: float
    mean_leaf_size: float
    max_leaf_size: int
    mean_child_count: float
    sah_cost: float
    total_bytes: int
    treelet_count: int
    mean_treelet_fill: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "node_count": self.node_count,
            "leaf_count": self.leaf_count,
            "triangle_count": self.triangle_count,
            "max_depth": self.max_depth,
            "mean_depth": self.mean_depth,
            "mean_leaf_size": self.mean_leaf_size,
            "max_leaf_size": self.max_leaf_size,
            "mean_child_count": self.mean_child_count,
            "sah_cost": self.sah_cost,
            "total_bytes": self.total_bytes,
            "treelet_count": self.treelet_count,
            "mean_treelet_fill": self.mean_treelet_fill,
        }


def _surface(bounds: np.ndarray) -> float:
    d = np.maximum(bounds[3:] - bounds[:3], 0.0)
    return float(2.0 * (d[0] * d[1] + d[1] * d[2] + d[2] * d[0]))


def leaf_depths(bvh: SceneBVH) -> List[int]:
    """Depth of every leaf block (root node = depth 1)."""
    wide = bvh.wide
    depths: List[int] = []
    stack = [(0, 1)]
    while stack:
        node, depth = stack.pop()
        for child, is_leaf, _local, _treelet, _bounds in bvh.node_children[node]:
            if is_leaf:
                depths.append(depth + 1)
            else:
                stack.append((child, depth + 1))
    return depths


def sah_cost(bvh: SceneBVH, traversal_cost: float = 1.0,
             intersection_cost: float = 1.0) -> float:
    """Surface-area-heuristic cost of the wide BVH, root-normalized."""
    wide = bvh.wide
    root = wide.root_bounds.surface_area()
    if root <= 0:
        return 0.0
    cost = 0.0
    for node in range(wide.node_count):
        for _child, is_leaf, _local, _treelet, bounds in [
            (c[0], c[1], c[2], c[3], c[4]) for c in bvh.node_children[node]
        ]:
            area = _surface(np.asarray(bounds))
            if is_leaf:
                leaf = _local
                cost += intersection_cost * int(wide.leaf_prim_count[leaf]) * area
            else:
                cost += traversal_cost * area
    return cost / root


def describe(bvh: SceneBVH) -> BVHStatistics:
    """Full quality summary of ``bvh``."""
    wide = bvh.wide
    depths = leaf_depths(bvh)
    fills = np.asarray(bvh.partition.treelet_bytes, dtype=np.float64)
    return BVHStatistics(
        node_count=wide.node_count,
        leaf_count=wide.leaf_count,
        triangle_count=bvh.mesh.triangle_count,
        max_depth=max(depths) if depths else 0,
        mean_depth=float(np.mean(depths)) if depths else 0.0,
        mean_leaf_size=float(np.mean(wide.leaf_prim_count)) if wide.leaf_count else 0.0,
        max_leaf_size=int(wide.leaf_prim_count.max()) if wide.leaf_count else 0,
        mean_child_count=float(np.mean(wide.child_count)),
        sah_cost=sah_cost(bvh),
        total_bytes=bvh.layout.total_bytes,
        treelet_count=bvh.treelet_count,
        mean_treelet_fill=float(fills.mean() / bvh.partition.budget_bytes),
    )
