"""LBVH: linear (Morton-order) BVH construction.

The fast-build path real-time renderers use when geometry changes too
much for refitting: sort triangles by the Morton code of their centroid,
then emit a hierarchy by recursively splitting the sorted range at the
highest differing code bit (Lauterbach et al. 2009 / Karras 2012 style).
Quality is below a SAH build (longer rays through fatter boxes) but the
build is a sort plus an O(n) pass.

``build_lbvh_binary`` produces the same :class:`BinaryBVH` structure as
the SAH builder, so the whole downstream pipeline (wide collapse,
treelets, layout, traversal, timing) is shared; ``build_scene_bvh_lbvh``
is the one-call variant.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.bvh.builder import BinaryBVH
from repro.bvh.layout import LayoutConfig
from repro.bvh.scene_bvh import SceneBVH, _prepare_tables, build_scene_bvh
from repro.bvh.treelets import partition_treelets
from repro.bvh.wide import collapse_to_wide
from repro.bvh.layout import build_layout
from repro.geometry.morton import morton_codes
from repro.geometry.triangle import TriangleMesh


def _highest_differing_bit(a: int, b: int) -> int:
    """Index of the most significant bit where the codes differ (-1: equal)."""
    x = a ^ b
    return x.bit_length() - 1


def build_lbvh_binary(mesh: TriangleMesh, max_leaf_size: int = 4) -> BinaryBVH:
    """Morton-order BVH over ``mesh`` (same output type as the SAH builder)."""
    if mesh.triangle_count == 0:
        raise ValueError("cannot build a BVH over an empty mesh")
    if max_leaf_size < 1:
        raise ValueError("max_leaf_size must be >= 1")

    centroids = mesh.triangle_centroids()
    bounds = mesh.bounds()
    codes = morton_codes(centroids, bounds.lo, bounds.hi)
    order = np.argsort(codes, kind="stable").astype(np.int64)
    sorted_codes = codes[order].astype(np.int64)

    tri_bounds = mesh.triangle_bounds()
    tri_lo = tri_bounds[:, 0:3]
    tri_hi = tri_bounds[:, 3:6]

    bounds_lo: List[np.ndarray] = []
    bounds_hi: List[np.ndarray] = []
    left: List[int] = []
    right: List[int] = []
    first_prim: List[int] = []
    prim_count: List[int] = []

    def alloc(start: int, end: int) -> int:
        idx = order[start:end]
        bounds_lo.append(tri_lo[idx].min(axis=0))
        bounds_hi.append(tri_hi[idx].max(axis=0))
        left.append(-1)
        right.append(-1)
        first_prim.append(0)
        prim_count.append(0)
        return len(left) - 1

    def split_point(start: int, end: int) -> int:
        """Split where the highest differing Morton bit flips."""
        first_code = int(sorted_codes[start])
        last_code = int(sorted_codes[end - 1])
        if first_code == last_code:
            return start + (end - start) // 2
        bit = _highest_differing_bit(first_code, last_code)
        mask = 1 << bit
        # Binary search for the first element with the bit set.
        lo, hi = start, end - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if int(sorted_codes[mid]) & mask:
                hi = mid
            else:
                lo = mid + 1
        return max(start + 1, min(lo, end - 1))

    root = alloc(0, mesh.triangle_count)
    work = [(root, 0, mesh.triangle_count)]
    while work:
        node, start, end = work.pop()
        count = end - start
        if count <= max_leaf_size:
            first_prim[node] = start
            prim_count[node] = count
            continue
        mid = split_point(start, end)
        lnode = alloc(start, mid)
        rnode = alloc(mid, end)
        left[node] = lnode
        right[node] = rnode
        work.append((lnode, start, mid))
        work.append((rnode, mid, end))

    bvh = BinaryBVH(mesh)
    bvh.bounds_lo = np.asarray(bounds_lo)
    bvh.bounds_hi = np.asarray(bounds_hi)
    bvh.left = np.asarray(left, dtype=np.int64)
    bvh.right = np.asarray(right, dtype=np.int64)
    bvh.first_prim = np.asarray(first_prim, dtype=np.int64)
    bvh.prim_count = np.asarray(prim_count, dtype=np.int64)
    bvh.prim_order = order
    return bvh


def build_scene_bvh_lbvh(
    mesh: TriangleMesh,
    layout_config: LayoutConfig = LayoutConfig(),
    treelet_budget_bytes: int = 8 * 1024,
    width: int = 4,
    max_leaf_size: int = 4,
) -> SceneBVH:
    """Full LBVH pipeline: Morton build -> wide -> treelets -> layout."""
    binary = build_lbvh_binary(mesh, max_leaf_size)
    wide = collapse_to_wide(binary, width)
    partition = partition_treelets(
        wide,
        budget_bytes=treelet_budget_bytes,
        node_bytes=layout_config.node_bytes,
        triangle_bytes=layout_config.triangle_bytes,
        leaf_header_bytes=layout_config.leaf_header_bytes,
    )
    layout = build_layout(wide, partition, layout_config)
    return _prepare_tables(mesh, wide, partition, layout)
