"""Binary BVH construction with a binned surface-area heuristic (SAH).

This plays the role Embree plays in the paper: producing a high-quality
binary tree that is then collapsed into a 4-wide BVH.  The builder is
iterative (explicit work stack) so deep scenes cannot hit Python's recursion
limit, and vectorized per split decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.triangle import TriangleMesh


@dataclass(frozen=True)
class BuildConfig:
    """Parameters of the SAH builder.

    Attributes
    ----------
    max_leaf_size:
        Maximum triangles per leaf.
    num_bins:
        Number of SAH bins per axis.
    traversal_cost, intersection_cost:
        Relative SAH costs of visiting a node vs testing a triangle.
    """

    max_leaf_size: int = 4
    num_bins: int = 16
    traversal_cost: float = 1.0
    intersection_cost: float = 1.0

    def __post_init__(self):
        if self.max_leaf_size < 1:
            raise ValueError("max_leaf_size must be >= 1")
        if self.num_bins < 2:
            raise ValueError("num_bins must be >= 2")


class BinaryBVH:
    """A binary BVH over a triangle mesh, structure-of-arrays.

    ``prim_order`` maps leaf ranges to original triangle indices: leaf node
    ``i`` covers ``prim_order[first_prim[i] : first_prim[i] + prim_count[i]]``.
    Interior nodes have ``prim_count == 0`` and children ``left[i]``,
    ``right[i]``.
    """

    __slots__ = (
        "bounds_lo",
        "bounds_hi",
        "left",
        "right",
        "first_prim",
        "prim_count",
        "prim_order",
        "mesh",
    )

    def __init__(self, mesh: TriangleMesh):
        self.mesh = mesh
        self.bounds_lo: np.ndarray = np.zeros((0, 3))
        self.bounds_hi: np.ndarray = np.zeros((0, 3))
        self.left: np.ndarray = np.zeros(0, dtype=np.int64)
        self.right: np.ndarray = np.zeros(0, dtype=np.int64)
        self.first_prim: np.ndarray = np.zeros(0, dtype=np.int64)
        self.prim_count: np.ndarray = np.zeros(0, dtype=np.int64)
        self.prim_order: np.ndarray = np.zeros(0, dtype=np.int64)

    @property
    def node_count(self) -> int:
        return len(self.left)

    def is_leaf(self, node: int) -> bool:
        return self.prim_count[node] > 0

    def node_bounds(self, node: int) -> AABB:
        return AABB(self.bounds_lo[node], self.bounds_hi[node])

    def leaf_primitives(self, node: int) -> np.ndarray:
        """Original triangle indices covered by leaf ``node``."""
        if not self.is_leaf(node):
            raise ValueError(f"node {node} is not a leaf")
        start = self.first_prim[node]
        return self.prim_order[start : start + self.prim_count[node]]

    def depth(self) -> int:
        """Maximum depth of the tree (root = depth 1)."""
        if self.node_count == 0:
            return 0
        best = 0
        stack = [(0, 1)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            if not self.is_leaf(node):
                stack.append((int(self.left[node]), d + 1))
                stack.append((int(self.right[node]), d + 1))
        return best

    def sah_cost(self, config: BuildConfig = BuildConfig()) -> float:
        """Total SAH cost of the tree, normalized by root surface area."""
        if self.node_count == 0:
            return 0.0
        root_sa = self.node_bounds(0).surface_area()
        if root_sa <= 0:
            return 0.0
        cost = 0.0
        for i in range(self.node_count):
            sa = AABB(self.bounds_lo[i], self.bounds_hi[i]).surface_area()
            if self.is_leaf(i):
                cost += config.intersection_cost * self.prim_count[i] * sa
            else:
                cost += config.traversal_cost * sa
        return cost / root_sa


def _centroid_bounds(centroids: np.ndarray) -> AABB:
    return AABB(centroids.min(axis=0), centroids.max(axis=0))


def build_binary_bvh(mesh: TriangleMesh, config: BuildConfig = BuildConfig()) -> BinaryBVH:
    """Build a binary SAH BVH over ``mesh``.

    Raises ``ValueError`` on an empty mesh (an acceleration structure over
    nothing has no root).
    """
    if mesh.triangle_count == 0:
        raise ValueError("cannot build a BVH over an empty mesh")

    tri_bounds = mesh.triangle_bounds()
    tri_lo = tri_bounds[:, 0:3]
    tri_hi = tri_bounds[:, 3:6]
    centroids = mesh.triangle_centroids()

    prim_order = np.arange(mesh.triangle_count, dtype=np.int64)

    bounds_lo: List[np.ndarray] = []
    bounds_hi: List[np.ndarray] = []
    left: List[int] = []
    right: List[int] = []
    first_prim: List[int] = []
    prim_count: List[int] = []

    def alloc_node(lo: np.ndarray, hi: np.ndarray) -> int:
        bounds_lo.append(lo)
        bounds_hi.append(hi)
        left.append(-1)
        right.append(-1)
        first_prim.append(0)
        prim_count.append(0)
        return len(left) - 1

    root_lo = tri_lo.min(axis=0)
    root_hi = tri_hi.max(axis=0)
    root = alloc_node(root_lo, root_hi)

    # Work stack of (node_index, start, end) primitive ranges to split.
    work = [(root, 0, mesh.triangle_count)]
    while work:
        node, start, end = work.pop()
        count = end - start
        if count <= config.max_leaf_size:
            first_prim[node] = start
            prim_count[node] = count
            continue

        idx = prim_order[start:end]
        cb = _centroid_bounds(centroids[idx])
        axis = cb.longest_axis()
        extent = cb.hi[axis] - cb.lo[axis]

        split = None
        if extent > 1e-12:
            split = _binned_sah_split(
                centroids[idx], tri_lo[idx], tri_hi[idx], cb, axis, config
            )

        if split is None and extent > 1e-12:
            # SAH prefers a leaf and the node is small enough to be one.
            first_prim[node] = start
            prim_count[node] = count
            continue

        if split is None:
            # Degenerate: all centroids coincide.  Median-split by index to
            # guarantee progress; primitive order is already arbitrary.
            split_mid = count // 2
        else:
            threshold, _ = split
            keys = centroids[idx][:, axis]
            in_left = keys < threshold
            # Stable partition preserving relative order on each side.
            prim_order[start:end] = np.concatenate([idx[in_left], idx[~in_left]])
            split_mid = int(in_left.sum())
            if split_mid == 0 or split_mid == count:
                split_mid = count // 2

        mid = start + split_mid
        lo_l, hi_l = _prim_range_bounds(prim_order, tri_lo, tri_hi, start, mid)
        lo_r, hi_r = _prim_range_bounds(prim_order, tri_lo, tri_hi, mid, end)
        lnode = alloc_node(lo_l, hi_l)
        rnode = alloc_node(lo_r, hi_r)
        left[node] = lnode
        right[node] = rnode
        work.append((lnode, start, mid))
        work.append((rnode, mid, end))

    bvh = BinaryBVH(mesh)
    bvh.bounds_lo = np.asarray(bounds_lo)
    bvh.bounds_hi = np.asarray(bounds_hi)
    bvh.left = np.asarray(left, dtype=np.int64)
    bvh.right = np.asarray(right, dtype=np.int64)
    bvh.first_prim = np.asarray(first_prim, dtype=np.int64)
    bvh.prim_count = np.asarray(prim_count, dtype=np.int64)
    bvh.prim_order = prim_order
    return bvh


def _prim_range_bounds(prim_order, tri_lo, tri_hi, start, end):
    idx = prim_order[start:end]
    return tri_lo[idx].min(axis=0), tri_hi[idx].max(axis=0)


def _binned_sah_split(centroids, lo, hi, cb: AABB, axis: int, config: BuildConfig):
    """Pick the best binned SAH split along ``axis``.

    Returns ``(threshold, cost)`` or ``None`` when making a leaf is cheaper
    and permitted by ``max_leaf_size``.
    """
    count = len(centroids)
    num_bins = config.num_bins
    cmin = cb.lo[axis]
    extent = cb.hi[axis] - cmin
    scale = num_bins / extent
    bin_idx = np.minimum(((centroids[:, axis] - cmin) * scale).astype(np.int64), num_bins - 1)

    bin_counts = np.bincount(bin_idx, minlength=num_bins)
    bin_lo = np.full((num_bins, 3), np.inf)
    bin_hi = np.full((num_bins, 3), -np.inf)
    for b in range(num_bins):
        mask = bin_idx == b
        if np.any(mask):
            bin_lo[b] = lo[mask].min(axis=0)
            bin_hi[b] = hi[mask].max(axis=0)

    # Sweep: left-to-right and right-to-left prefix bounds and counts.
    left_counts = np.cumsum(bin_counts)[:-1]
    right_counts = count - left_counts
    left_lo = np.minimum.accumulate(bin_lo, axis=0)[:-1]
    left_hi = np.maximum.accumulate(bin_hi, axis=0)[:-1]
    right_lo = np.minimum.accumulate(bin_lo[::-1], axis=0)[::-1][1:]
    right_hi = np.maximum.accumulate(bin_hi[::-1], axis=0)[::-1][1:]

    def areas(los, his):
        d = np.maximum(his - los, 0.0)
        d = np.where(np.isfinite(d), d, 0.0)
        return 2.0 * (d[:, 0] * d[:, 1] + d[:, 1] * d[:, 2] + d[:, 2] * d[:, 0])

    sa_left = areas(left_lo, left_hi)
    sa_right = areas(right_lo, right_hi)
    parent_sa = max(AABB(lo.min(axis=0), hi.max(axis=0)).surface_area(), 1e-20)

    split_costs = config.traversal_cost + config.intersection_cost * (
        sa_left * left_counts + sa_right * right_counts
    ) / parent_sa
    # Invalid splits (all prims on one side) get infinite cost.
    split_costs = np.where((left_counts == 0) | (right_counts == 0), np.inf, split_costs)

    best = int(np.argmin(split_costs))
    best_cost = split_costs[best]
    leaf_cost = config.intersection_cost * count
    if not np.isfinite(best_cost):
        return None
    if count <= config.max_leaf_size and leaf_cost <= best_cost:
        return None
    threshold = cmin + (best + 1) / scale
    return threshold, float(best_cost)
