"""Collapse a binary BVH into a 4-wide BVH.

The paper uses a 4-wide BVH built by Embree and repacked into the
compressed-leaf format of Benthin et al.  We reproduce the topology side
here: a greedy collapse that repeatedly replaces the largest-surface-area
interior child with its own children until the node holds up to
``width`` children.

The wide BVH is stored structure-of-arrays.  Child slots reference either
another wide node or a *leaf block* (a contiguous run of triangles).  Leaf
blocks get their own index space because the memory layout serializes them
as separate byte ranges.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.bvh.builder import BinaryBVH
from repro.geometry.aabb import AABB


class WideBVH:
    """A ``width``-wide BVH, structure-of-arrays.

    Attributes
    ----------
    width:
        Maximum children per node (4 in all paper experiments).
    child_count:
        ``(N,)`` number of valid child slots per node.
    child_index:
        ``(N, width)`` child node index, or leaf block index when the
        matching ``child_is_leaf`` flag is set; -1 for unused slots.
    child_is_leaf:
        ``(N, width)`` bool.
    child_bounds:
        ``(N, width, 6)`` child AABBs as ``[lo, hi]``; unused slots hold an
        empty (inverted) box so slab tests always miss them.
    leaf_first_prim / leaf_prim_count:
        ``(L,)`` ranges into ``prim_order`` for each leaf block.
    prim_order:
        Permutation of original triangle indices shared with the source
        binary BVH.
    """

    __slots__ = (
        "width",
        "child_count",
        "child_index",
        "child_is_leaf",
        "child_bounds",
        "leaf_first_prim",
        "leaf_prim_count",
        "prim_order",
        "mesh",
        "root_bounds",
    )

    def __init__(self, width: int, mesh):
        self.width = width
        self.mesh = mesh
        self.child_count = np.zeros(0, dtype=np.int64)
        self.child_index = np.zeros((0, width), dtype=np.int64)
        self.child_is_leaf = np.zeros((0, width), dtype=bool)
        self.child_bounds = np.zeros((0, width, 6))
        self.leaf_first_prim = np.zeros(0, dtype=np.int64)
        self.leaf_prim_count = np.zeros(0, dtype=np.int64)
        self.prim_order = np.zeros(0, dtype=np.int64)
        self.root_bounds = AABB.empty()

    @property
    def node_count(self) -> int:
        return len(self.child_count)

    @property
    def leaf_count(self) -> int:
        return len(self.leaf_first_prim)

    def leaf_primitives(self, leaf: int) -> np.ndarray:
        """Original triangle indices of leaf block ``leaf``."""
        start = self.leaf_first_prim[leaf]
        return self.prim_order[start : start + self.leaf_prim_count[leaf]]

    def leaf_triangles(self, leaf: int) -> np.ndarray:
        """``(K, 3, 3)`` triangle vertices of leaf block ``leaf``."""
        prims = self.leaf_primitives(leaf)
        return self.mesh.vertices[self.mesh.indices[prims]]

    def node_children(self, node: int):
        """Valid ``(child_index, is_leaf, bounds)`` triples of ``node``."""
        count = int(self.child_count[node])
        return [
            (int(self.child_index[node, k]), bool(self.child_is_leaf[node, k]),
             self.child_bounds[node, k])
            for k in range(count)
        ]

    def validate(self) -> None:
        """Raise ``AssertionError`` if structural invariants are violated.

        Checks: every node/leaf reachable exactly once from the root, child
        bounds contain descendant bounds, and leaf ranges tile
        ``prim_order`` without overlap.
        """
        seen_nodes = np.zeros(self.node_count, dtype=bool)
        seen_leaves = np.zeros(self.leaf_count, dtype=bool)
        stack = [0]
        seen_nodes[0] = True
        while stack:
            node = stack.pop()
            for child, is_leaf, bounds in self.node_children(node):
                lo, hi = bounds[:3], bounds[3:]
                assert np.all(lo <= hi), "child slot holds an inverted box"
                if is_leaf:
                    assert not seen_leaves[child], "leaf referenced twice"
                    seen_leaves[child] = True
                else:
                    assert not seen_nodes[child], "node referenced twice"
                    seen_nodes[child] = True
                    stack.append(child)
        assert seen_nodes.all(), "unreachable wide node"
        assert seen_leaves.all(), "unreachable leaf block"
        covered = np.zeros(len(self.prim_order), dtype=np.int64)
        for leaf in range(self.leaf_count):
            s = self.leaf_first_prim[leaf]
            covered[s : s + self.leaf_prim_count[leaf]] += 1
        assert np.all(covered == 1), "leaf ranges must tile prim_order exactly"


def collapse_to_wide(binary: BinaryBVH, width: int = 4) -> WideBVH:
    """Greedy surface-area-ordered collapse of ``binary`` into a wide BVH."""
    if width < 2:
        raise ValueError("width must be >= 2")
    if binary.node_count == 0:
        raise ValueError("cannot collapse an empty BVH")

    wide = WideBVH(width, binary.mesh)
    wide.prim_order = binary.prim_order
    wide.root_bounds = binary.node_bounds(0)

    child_count: List[int] = []
    child_index: List[List[int]] = []
    child_is_leaf: List[List[bool]] = []
    child_bounds: List[List[np.ndarray]] = []
    leaf_first: List[int] = []
    leaf_count_: List[int] = []

    def surface(node: int) -> float:
        d = binary.bounds_hi[node] - binary.bounds_lo[node]
        return float(2.0 * (d[0] * d[1] + d[1] * d[2] + d[2] * d[0]))

    def make_leaf_block(bnode: int) -> int:
        leaf_first.append(int(binary.first_prim[bnode]))
        leaf_count_.append(int(binary.prim_count[bnode]))
        return len(leaf_first) - 1

    def alloc_wide() -> int:
        child_count.append(0)
        child_index.append([-1] * width)
        child_is_leaf.append([False] * width)
        child_bounds.append([_EMPTY_BOX.copy() for _ in range(width)])
        return len(child_count) - 1

    # Each work item maps a binary subtree root to a wide node slot to fill.
    # The root must be a wide node even if the binary root is a leaf.
    root_wide = alloc_wide()
    work = [(0, root_wide)]
    while work:
        broot, wnode = work.pop()
        # Gather up to `width` binary nodes by splitting the largest-area
        # interior candidate.
        group: List[int] = [broot]
        while len(group) < width:
            best_i = -1
            best_sa = -1.0
            for i, b in enumerate(group):
                if not binary.is_leaf(b) and surface(b) > best_sa:
                    best_sa = surface(b)
                    best_i = i
            if best_i < 0:
                break
            b = group.pop(best_i)
            group.append(int(binary.left[b]))
            group.append(int(binary.right[b]))

        slots = 0
        for b in group:
            if binary.is_leaf(b):
                idx = make_leaf_block(b)
                child_is_leaf[wnode][slots] = True
            else:
                idx = alloc_wide()
                work.append((b, idx))
                child_is_leaf[wnode][slots] = False
            child_index[wnode][slots] = idx
            child_bounds[wnode][slots] = np.concatenate(
                [binary.bounds_lo[b], binary.bounds_hi[b]]
            )
            slots += 1
        child_count[wnode] = slots

    wide.child_count = np.asarray(child_count, dtype=np.int64)
    wide.child_index = np.asarray(child_index, dtype=np.int64)
    wide.child_is_leaf = np.asarray(child_is_leaf, dtype=bool)
    wide.child_bounds = np.asarray(child_bounds)
    wide.leaf_first_prim = np.asarray(leaf_first, dtype=np.int64)
    wide.leaf_prim_count = np.asarray(leaf_count_, dtype=np.int64)
    return wide


# Inverted box: slab tests against it always miss, so unused child slots are
# harmless even in fully vectorized tests.
_EMPTY_BOX = np.array([np.inf, np.inf, np.inf, -np.inf, -np.inf, -np.inf])
