"""Serialized, byte-addressed BVH memory layout.

The timing simulators operate on *addresses*: every cache access is a byte
address into a flat BVH image.  The layout assigns addresses treelet by
treelet, so each treelet occupies one contiguous address range.  This
mirrors the paper's packing assumption (Section 6.5: treelets "can be
packed together in memory", so a treelet is identified by the most
significant 19 bits of its address).

Items inside a treelet are laid out in DFS order from the treelet root,
which keeps a depth-first traversal within a treelet spatially local even
at cache-line granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.bvh.treelets import TreeletPartition, item_sizes
from repro.bvh.wide import WideBVH


@dataclass(frozen=True)
class LayoutConfig:
    """Byte-size parameters of the serialized BVH.

    Defaults approximate the compressed-wide-node formats the paper builds
    on: a 4-wide interior node with quantized child boxes fits in 64 B, a
    leaf block stores a small header plus its triangles.

    Use :func:`compressed_layout_config` to derive a config whose leaf
    sizes come from a Benthin-style :class:`CompressedLeafCodec` — the
    format Vulkan-Sim repacks the Embree BVH into.
    """

    node_bytes: int = 64
    triangle_bytes: int = 48
    leaf_header_bytes: int = 16
    line_bytes: int = 32
    base_address: int = 0

    def __post_init__(self):
        if self.line_bytes <= 0 or (self.line_bytes & (self.line_bytes - 1)):
            raise ValueError("line_bytes must be a positive power of two")
        if self.node_bytes <= 0 or self.triangle_bytes <= 0:
            raise ValueError("node and triangle sizes must be positive")


def compressed_layout_config(codec=None, base: "LayoutConfig" = None) -> "LayoutConfig":
    """A LayoutConfig whose leaf sizes come from a compressed-leaf codec.

    This is the Benthin et al. (HPG 2018) layout the paper's methodology
    uses: triangle data quantized per leaf, shrinking leaf blocks and
    therefore fitting more geometry per treelet.
    """
    from dataclasses import replace as _replace

    from repro.bvh.compressed import CompressedLeafCodec

    codec = codec or CompressedLeafCodec()
    base = base or LayoutConfig()
    return _replace(
        base,
        triangle_bytes=codec.triangle_bytes(),
        leaf_header_bytes=codec.header_bytes,
    )


@dataclass
class BVHLayout:
    """Addresses of every BVH item plus treelet address ranges.

    Attributes
    ----------
    item_address / item_bytes:
        ``(num_items,)`` byte address and size per item (wide nodes first,
        then leaf blocks, same item-id space as :class:`TreeletPartition`).
    treelet_base / treelet_bytes:
        ``(T,)`` start address and byte length of each treelet's range.
    total_bytes:
        Size of the whole serialized image.
    config:
        The :class:`LayoutConfig` used.
    """

    item_address: np.ndarray
    item_bytes: np.ndarray
    treelet_base: np.ndarray
    treelet_sizes: np.ndarray
    total_bytes: int
    config: LayoutConfig

    def item_lines(self, item: int) -> range:
        """Cache-line ids touched when fetching item ``item`` entirely."""
        start = int(self.item_address[item])
        end = start + int(self.item_bytes[item])
        line = self.config.line_bytes
        return range(start // line, (end + line - 1) // line)

    def treelet_lines(self, treelet: int) -> range:
        """Cache-line ids of the whole treelet ``treelet``."""
        start = int(self.treelet_base[treelet])
        end = start + int(self.treelet_sizes[treelet])
        line = self.config.line_bytes
        return range(start // line, (end + line - 1) // line)

    def treelet_of_address(self, address: int) -> int:
        """Treelet id owning byte ``address`` (used by prefetch logic)."""
        idx = int(np.searchsorted(self.treelet_base, address, side="right")) - 1
        if idx < 0 or address >= self.treelet_base[idx] + self.treelet_sizes[idx]:
            raise ValueError(f"address {address} outside the BVH image")
        return idx

    def size_megabytes(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)


def build_layout(
    wide: WideBVH,
    partition: TreeletPartition,
    config: LayoutConfig = LayoutConfig(),
) -> BVHLayout:
    """Assign byte addresses to all items, treelet by treelet."""
    sizes = item_sizes(
        wide, config.node_bytes, config.triangle_bytes, config.leaf_header_bytes
    )
    num_items = len(sizes)
    addresses = np.full(num_items, -1, dtype=np.int64)
    treelet_base = np.zeros(partition.treelet_count, dtype=np.int64)
    treelet_sizes = np.zeros(partition.treelet_count, dtype=np.int64)

    # Items are serialized in the order the partitioner recorded them, which
    # is DFS order for the "pack" strategy and greedy-absorption order for
    # "subtree" — both traversal-coherent within a treelet.
    cursor = config.base_address
    for tid in range(partition.treelet_count):
        treelet_base[tid] = cursor
        for item in partition.treelet_items[tid]:
            addresses[item] = cursor
            cursor += int(sizes[item])
        treelet_sizes[tid] = cursor - treelet_base[tid]

    if np.any(addresses < 0):  # pragma: no cover - partition guarantees
        raise AssertionError("layout left unaddressed items")
    return BVHLayout(
        item_address=addresses,
        item_bytes=sizes,
        treelet_base=treelet_base,
        treelet_sizes=treelet_sizes,
        total_bytes=int(cursor - config.base_address),
        config=config,
    )


def address_ranges_disjoint(layout: BVHLayout) -> bool:
    """True when no two items overlap in the address space (test helper)."""
    order = np.argsort(layout.item_address)
    addr = layout.item_address[order]
    size = layout.item_bytes[order]
    return bool(np.all(addr[1:] >= addr[:-1] + size[:-1]))


def treelet_prefix_bits(layout: BVHLayout, budget_bytes: int) -> int:
    """How many address bits identify a treelet, per the paper's 6.5 math.

    With treelets packed contiguously at ``budget_bytes`` granularity, the
    treelet id is ``address >> log2(budget)``; the paper's example: 8 KB
    treelets in a 4 GB space need 19 bits.
    """
    if budget_bytes <= 0 or (budget_bytes & (budget_bytes - 1)):
        raise ValueError("budget must be a power of two for prefix addressing")
    address_bits = 32
    return address_bits - int(np.log2(budget_bytes))


def layout_summary(layout: BVHLayout, partition: TreeletPartition) -> dict:
    """Human-readable layout statistics (used by Table 2 reporting)."""
    return {
        "total_mb": layout.size_megabytes(),
        "treelets": partition.treelet_count,
        "mean_treelet_kb": float(np.mean(layout.treelet_sizes)) / 1024.0,
        "max_treelet_kb": float(np.max(layout.treelet_sizes)) / 1024.0,
        "lines": layout.total_bytes // layout.config.line_bytes,
    }
