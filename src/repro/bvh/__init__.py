"""BVH substrate.

Pipeline (mirroring the paper's methodology section):

1. :mod:`repro.bvh.builder` builds a binary BVH with a binned surface-area
   heuristic (the role Embree plays in the paper).
2. :mod:`repro.bvh.wide` collapses it into a 4-wide BVH (the paper uses a
   4-wide tree repacked into Benthin et al.'s format).
3. :mod:`repro.bvh.treelets` partitions the wide BVH into byte-budgeted
   treelets (Aila & Karras style; the paper sizes treelets to half the L1).
4. :mod:`repro.bvh.layout` serializes nodes and leaf blocks into one flat
   byte-addressed memory image with treelet-contiguous addresses.
5. :mod:`repro.bvh.traversal` provides the functional traversal reference
   and the two-stack treelet traversal order (Chou et al., MICRO 2023) used
   by every timing model.
"""

from repro.bvh.builder import BinaryBVH, BuildConfig, build_binary_bvh
from repro.bvh.wide import WideBVH, collapse_to_wide
from repro.bvh.treelets import TreeletPartition, partition_treelets
from repro.bvh.layout import BVHLayout, LayoutConfig, build_layout
from repro.bvh.compressed import CompressedLeafCodec
from repro.bvh.scene_bvh import SceneBVH, build_scene_bvh
from repro.bvh.lbvh import build_scene_bvh_lbvh
from repro.bvh.refit import refit_scene_bvh
from repro.bvh.serialize import load_scene_bvh, save_scene_bvh
from repro.bvh.stats import describe
from repro.bvh.traversal import (
    HitRecord,
    RayTraversalState,
    TraversalOrder,
    full_traverse,
    init_traversal,
    single_step,
)

__all__ = [
    "BinaryBVH",
    "BuildConfig",
    "build_binary_bvh",
    "WideBVH",
    "collapse_to_wide",
    "TreeletPartition",
    "partition_treelets",
    "BVHLayout",
    "LayoutConfig",
    "build_layout",
    "CompressedLeafCodec",
    "SceneBVH",
    "build_scene_bvh",
    "build_scene_bvh_lbvh",
    "refit_scene_bvh",
    "save_scene_bvh",
    "load_scene_bvh",
    "describe",
    "HitRecord",
    "RayTraversalState",
    "TraversalOrder",
    "full_traverse",
    "init_traversal",
    "single_step",
]
