#!/usr/bin/env python3
"""RT-accelerated database indexing (the paper's Section 8 outlook).

RTIndeX (Henneberg & Schuhknecht, 2023) serves database range scans from
a GPU ray-tracing unit: keys become primitives on a line, a scan becomes
a ray segment, hits are the result set.  The paper argues virtualized
treelet queues should accelerate exactly such workloads.  This example
tests that: it builds an RT-backed index over one million... well, over a
configurable number of keys, runs a batch of range scans through the
baseline and VTQ engines, verifies results against a plain array scan,
and compares cycles.

Run:  python examples/rtindex_db.py [--keys N] [--queries Q]
"""

import argparse
import sys

import numpy as np

from repro.rtquery import RangeIndex, time_queries


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keys", type=int, default=5000)
    parser.add_argument("--queries", type=int, default=256)
    parser.add_argument("--selectivity", type=float, default=0.01,
                        help="fraction of the key space each scan covers")
    args = parser.parse_args()

    rng = np.random.default_rng(7)
    keys = rng.uniform(0, 1_000_000, args.keys)
    print(f"Building RT index over {args.keys} keys ...")
    index = RangeIndex(keys)
    print(f"  BVH: {index.bvh.node_count} nodes, "
          f"{index.bvh.treelet_count} treelets\n")

    span = 1_000_000 * args.selectivity
    starts = rng.uniform(0, 1_000_000 - span, args.queries)
    queries = [(s, s + span) for s in starts]

    def factory(i):
        return index.make_query_state(*queries[i], ray_id=i)

    results = {}
    for policy in ("baseline", "prefetch", "vtq"):
        results[policy] = time_queries(
            index.bvh, factory, args.queries, policy=policy
        )
        r = results[policy]
        print(f"{policy:9s}  {r.cycles:12,.0f} cycles   "
              f"SIMT {r.stats.simt_efficiency():.2f}   "
              f"L1 miss {r.stats.miss_rate('l1'):.2f}")

    # Verify every engine returned the exact oracle result set.
    checked = 0
    for policy, result in results.items():
        for i, state in enumerate(result.states):
            got = sorted(p for p, _ in state.all_hits)
            expected = index.oracle_query(*queries[i])
            assert got == expected, (policy, i)
            checked += 1
    print(f"\nAll {checked} query results match the array-scan oracle.")

    base = results["baseline"].cycles
    print(f"VTQ speedup on range scans: {base / results['vtq'].cycles:.2f}x "
          f"(prefetch: {base / results['prefetch'].cycles:.2f}x)")
    mean_hits = np.mean(
        [len(s.all_hits) for s in results["baseline"].states]
    )
    print(f"Mean result-set size: {mean_hits:.1f} keys per scan")
    return 0


if __name__ == "__main__":
    sys.exit(main())
