#!/usr/bin/env python3
"""Concurrency sweep: how many rays in flight does VTQ need?

Section 2.4 argues (analytically) that treelet benefits grow with the
number of concurrent rays — the justification for ray virtualization.
This example tests that claim *in the detailed simulator*: it renders one
scene with the virtual-ray budget capped at increasing levels and reports
the measured speedup over the baseline, side by side with the analytical
model's prediction for the same concurrency.

Run:  python examples/concurrency_sweep.py [SCENE]
"""

import argparse
import sys
from dataclasses import replace

from repro.analytic import collect_workload_traces, concurrency_sweep
from repro.bvh import build_scene_bvh
from repro.core.config import VTQConfig
from repro.gpusim.config import ScaledSetup, default_setup
from repro.scenes import load_scene, scene_names
from repro.tracing import render_scene


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scene", nargs="?", default="CRNVL",
                        choices=scene_names(include_extra=True))
    args = parser.parse_args()

    setup = default_setup()
    scene = load_scene(args.scene, scale=setup.scene_scale)
    bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=setup.gpu.treelet_bytes)

    levels = (64, 128, 256, 512, 1024, 4096)
    traces = collect_workload_traces(
        scene, bvh, setup.image_width, setup.image_height, setup.max_bounces
    )
    analytic = concurrency_sweep(traces, bvh, levels)

    baseline = render_scene(scene, bvh, setup, policy="baseline")
    print(f"{args.scene}: baseline = {baseline.cycles:,.0f} cycles\n")
    print(f"{'virtual rays':>12s} {'measured speedup':>17s} {'analytical':>11s}")
    for level in levels:
        capped = ScaledSetup(
            gpu=replace(setup.gpu, max_virtual_rays_per_sm=level),
            image_width=setup.image_width,
            image_height=setup.image_height,
            scene_scale=setup.scene_scale,
            max_bounces=setup.max_bounces,
        )
        vtq = VTQConfig().scaled_to(level)
        result = render_scene(scene, bvh, capped, policy="vtq", vtq_config=vtq)
        print(f"{level:12d} {baseline.cycles / result.cycles:16.2f}x "
              f"{analytic[level]:10.2f}x")
    print("\nThe analytical model ignores caches and overheads, so its "
          "absolute numbers run high; the shared shape — more concurrent "
          "rays, more treelet benefit — is the paper's Figure 5 argument.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
