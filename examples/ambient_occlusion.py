#!/usr/bin/env python3
"""Ambient occlusion renderer on the Vulkan-style pipeline API.

Demonstrates writing a *custom* renderer against ``repro.vkrt`` — the
programming model of the paper's Figure 2 — instead of using the built-in
path tracer.  Each raygen thread traces a primary ray, then fans out a
handful of short occlusion rays over the hemisphere at the hit point; the
fraction that escape is the pixel's ambient light.

AO rays are short, incoherent and cheap to shade — a classic stress test
for the RT unit, and exactly the kind of secondary-ray workload treelet
queues target.

Run:  python examples/ambient_occlusion.py [SCENE] [--size N] [--rays K]
"""

import argparse
import sys

import numpy as np

from repro.bvh import build_scene_bvh
from repro.gpusim.config import default_setup
from repro.scenes import load_scene, scene_names
from repro.tracing.sampling import HashSampler
from repro.scenes.materials import cosine_hemisphere
from repro.vkrt import RayTracingPipeline, TraceCall


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scene", nargs="?", default="CRNVL",
                        choices=scene_names(include_extra=True))
    parser.add_argument("--size", type=int, default=32)
    parser.add_argument("--rays", type=int, default=4,
                        help="occlusion rays per hit point")
    args = parser.parse_args()

    setup = default_setup()
    scene = load_scene(args.scene, scale=setup.scene_scale)
    bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=setup.gpu.treelet_bytes)
    width = height = args.size
    primaries = scene.camera.primary_rays(width, height)
    ao_distance = float(np.linalg.norm(scene.mesh.bounds().extent())) * 0.1

    def raygen(launch_id, payload):
        hit = yield TraceCall(
            tuple(primaries.origins[launch_id]),
            tuple(primaries.directions[launch_id]),
        )
        if not hit.hit:
            payload["ao"] = 1.0  # sky: fully unoccluded
            return
        normal = hit.normal
        if np.dot(normal, primaries.directions[launch_id]) > 0:
            normal = -normal
        escaped = 0
        for k in range(args.rays):
            sampler = HashSampler(launch_id, k, seed=101)
            direction = cosine_hemisphere(normal, sampler)
            shadow = yield TraceCall(
                tuple(hit.position + 1e-3 * normal),
                tuple(direction),
                tmax=ao_distance,
            )
            if not shadow.hit:
                escaped += 1
        payload["ao"] = escaped / args.rays

    print(f"Rendering {args.rays}-ray AO of {args.scene} at {width}x{height} ...")
    results = {}
    for policy in ("baseline", "vtq"):
        pipeline = RayTracingPipeline(raygen)
        results[policy] = pipeline.launch(bvh, width, height, policy=policy)
        r = results[policy]
        print(f"{policy:9s}  {r.cycles:12,.0f} cycles   "
              f"SIMT {r.stats.simt_efficiency():.2f}   "
              f"L1 miss {r.stats.miss_rate('l1'):.2f}")

    ao_base = results["baseline"].image(lambda p: p["ao"])
    ao_vtq = results["vtq"].image(lambda p: p["ao"])
    assert np.array_equal(ao_base, ao_vtq), "policies must agree"
    print(f"\nAO images identical across engines; "
          f"speedup {results['baseline'].cycles / results['vtq'].cycles:.2f}x")

    from repro.tracing.image import write_pgm

    path = f"{args.scene.lower()}_ao.pgm"
    write_pgm(path, np.clip(ao_base, 0, 1))
    print(f"Wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
