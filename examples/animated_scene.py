#!/usr/bin/env python3
"""Animated scene: per-frame BVH refitting under the VTQ architecture.

Real-time ray tracing refits the acceleration structure every frame
instead of rebuilding it.  This example deforms a scene over several
frames, refits the BVH each frame (topology, treelets and memory layout
stay fixed — so the RT unit's working sets are stable), renders with the
baseline and VTQ engines, and tracks how bounds inflation degrades
traversal as the deformation drifts from the built pose.

Run:  python examples/animated_scene.py [SCENE] [--frames N]
"""

import argparse
import sys
import time

import numpy as np

from repro.bvh import build_scene_bvh
from repro.bvh.refit import bounds_inflation, refit_scene_bvh
from repro.gpusim.config import default_setup
from repro.scenes import load_scene, scene_names
from repro.tracing import render_scene


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scene", nargs="?", default="BUNNY",
                        choices=scene_names(include_extra=True))
    parser.add_argument("--frames", type=int, default=4)
    parser.add_argument("--amplitude", type=float, default=0.15,
                        help="deformation amplitude per frame (fraction of scene size)")
    args = parser.parse_args()

    setup = default_setup()
    scene = load_scene(args.scene, scale=setup.scene_scale)
    t0 = time.time()
    bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=setup.gpu.treelet_bytes)
    build_time = time.time() - t0
    print(f"{args.scene}: full SAH build {build_time * 1000:.0f} ms, "
          f"{bvh.treelet_count} treelets\n")

    extent = float(np.linalg.norm(scene.mesh.bounds().extent()))
    base_vertices = scene.mesh.vertices.copy()
    rng = np.random.default_rng(3)
    wobble_dir = rng.normal(size=base_vertices.shape)
    wobble_dir /= np.linalg.norm(wobble_dir, axis=1, keepdims=True)
    frequencies = rng.uniform(1.0, 3.0, len(base_vertices))[:, None]

    header = (f"{'frame':>5s} {'refit ms':>9s} {'inflation':>10s} "
              f"{'baseline cyc':>13s} {'VTQ cyc':>11s} {'speedup':>8s}")
    print(header)
    print("-" * len(header))
    frame_bvh = bvh
    for frame in range(args.frames):
        phase = frame / max(args.frames - 1, 1) * np.pi
        offsets = (
            args.amplitude * extent * 0.02
            * np.sin(frequencies * phase) * wobble_dir
        )
        t0 = time.time()
        frame_bvh = refit_scene_bvh(bvh, new_vertices=base_vertices + offsets)
        refit_ms = (time.time() - t0) * 1000
        scene.mesh = frame_bvh.mesh  # shading reads normals from the mesh
        inflation = bounds_inflation(bvh, frame_bvh)
        base = render_scene(scene, frame_bvh, setup, policy="baseline")
        vtq = render_scene(scene, frame_bvh, setup, policy="vtq")
        assert np.array_equal(base.image, vtq.image)
        print(f"{frame:5d} {refit_ms:9.0f} {inflation:10.3f} "
              f"{base.cycles:13,.0f} {vtq.cycles:11,.0f} "
              f"{base.cycles / vtq.cycles:7.2f}x")

    print(f"\nRefits reuse topology, treelet partition and addresses; a full "
          f"rebuild costs {build_time * 1000:.0f} ms per frame instead.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
