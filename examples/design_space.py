#!/usr/bin/env python3
"""Design-space exploration with the sweep utilities.

Walks the two knobs the paper sweeps in its ablations — the queue
threshold (Figure 12) and the repack threshold (Figure 13) — plus a GPU
knob the paper keeps fixed (L1 size), all on one scene, and prints the
resulting tables.  Any VTQConfig or GPUConfig field can be swept the
same way.

Run:  python examples/design_space.py [SCENE]
"""

import argparse
import sys

from repro.experiments import default_context, format_table
from repro.experiments.sweeps import sweep_gpu_param, sweep_vtq_param
from repro.scenes import scene_names


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scene", nargs="?", default="SPNZA",
                        choices=scene_names(include_extra=True))
    args = parser.parse_args()
    context = default_context()

    print(format_table(sweep_vtq_param(
        args.scene, context, "queue_threshold", (8, 32, 128, 512)
    )))
    print()
    print(format_table(sweep_vtq_param(
        args.scene, context, "repack_threshold", (4, 12, 22, 30)
    )))
    print()
    print(format_table(sweep_gpu_param(
        args.scene, context, "l1_bytes", (1024, 2048, 4096)
    )))
    print("\nSweep any other field the same way: "
          "sweep_vtq_param(scene, ctx, 'divergence_threshold', (1, 4, 16)).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
