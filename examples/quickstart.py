#!/usr/bin/env python3
"""Quickstart: path trace one scene on all three simulated architectures.

Builds the BUNNY scene, its 4-wide treelet-partitioned BVH, and renders it
through the baseline RT unit, the Treelet Prefetching baseline (Chou et
al., MICRO 2023) and Virtualized Treelet Queues (the paper's proposal),
then prints a comparison.  All three produce the *identical* image — the
timing models only decide how long it takes.

Run:  python examples/quickstart.py [SCENE] [--scale S]
"""

import argparse
import sys
import time

import numpy as np

from repro.bvh import build_scene_bvh
from repro.gpusim.config import default_setup
from repro.scenes import load_scene, scene_names
from repro.tracing import render_scene


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scene", nargs="?", default="BUNNY",
                        choices=scene_names(include_extra=True))
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scene triangle-budget scale factor")
    args = parser.parse_args()

    setup = default_setup()
    print(f"Loading scene {args.scene} (scale {args.scale}) ...")
    scene = load_scene(args.scene, scale=args.scale)
    print(f"  {scene.mesh.triangle_count} triangles")

    print("Building 4-wide SAH BVH with treelet partition ...")
    bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=setup.gpu.treelet_bytes)
    summary = bvh.summary()
    print(f"  {summary['nodes']} wide nodes, {summary['leaves']} leaf blocks, "
          f"{summary['treelets']} treelets, {summary['bvh_mb'] * 1024:.0f} KB")

    print(f"Rendering {setup.image_width}x{setup.image_height}, "
          f"{setup.max_bounces} bounces, {setup.gpu.num_sms} SMs ...\n")
    results = {}
    for policy in ("baseline", "prefetch", "vtq"):
        start = time.time()
        results[policy] = render_scene(scene, bvh, setup, policy=policy)
        wall = time.time() - start
        r = results[policy]
        print(f"{policy:9s}  {r.cycles:12,.0f} cycles   "
              f"SIMT {r.stats.simt_efficiency():.2f}   "
              f"L1 miss {r.stats.miss_rate('l1'):.2f}   ({wall:.1f}s wall)")

    base = results["baseline"]
    print()
    for policy in ("prefetch", "vtq"):
        speedup = base.cycles / results[policy].cycles
        identical = np.array_equal(results[policy].image, base.image)
        print(f"{policy:9s}  {speedup:.2f}x speedup over baseline   "
              f"image identical to baseline: {identical}")

    # Save the image as a PPM so there is something to look at.
    from repro.tracing.image import tonemap, write_ppm

    path = f"{args.scene.lower()}_render.ppm"
    write_ppm(path, tonemap(base.image))
    print(f"\nWrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
