#!/usr/bin/env python3
"""Whitted-style ray tracing on the pipeline API.

The classic recursive ray tracer (Whitted 1980): primary rays, hard
shadows toward a point light, and mirror reflections up to a fixed
depth.  Unlike the path tracer it is deterministic per pixel with no
sampling noise — and its shadow/reflection rays are the classic
incoherent secondary workload the paper's architecture targets.

Run:  python examples/whitted.py [SCENE] [--size N] [--depth D]
"""

import argparse
import sys

import numpy as np

from repro.bvh import build_scene_bvh
from repro.gpusim.config import default_setup
from repro.scenes import load_scene, scene_names
from repro.tracing.image import tonemap, write_ppm
from repro.vkrt import RayTracingPipeline, TraceCall


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scene", nargs="?", default="REF",
                        choices=scene_names(include_extra=True))
    parser.add_argument("--size", type=int, default=48)
    parser.add_argument("--depth", type=int, default=3,
                        help="max mirror-reflection depth")
    args = parser.parse_args()

    setup = default_setup()
    scene = load_scene(args.scene, scale=setup.scene_scale)
    bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=setup.gpu.treelet_bytes)
    width = height = args.size
    primaries = scene.camera.primary_rays(width, height)

    bounds = scene.mesh.bounds()
    light = bounds.centroid() + np.array([0.3, -0.2, 0.45]) * bounds.extent()
    sky = np.asarray(scene.sky_emission) if any(scene.sky_emission) else np.full(3, 0.05)

    def reflect(d, n):
        return d - 2.0 * np.dot(d, n) * n

    def raygen(launch_id, payload):
        origin = primaries.origins[launch_id]
        direction = primaries.directions[launch_id]
        color = np.zeros(3)
        attenuation = 1.0
        for depth in range(args.depth + 1):
            hit = yield TraceCall(tuple(origin), tuple(direction))
            if not hit.hit:
                color += attenuation * sky
                break
            material = scene.materials[hit.material_id]
            normal = hit.normal / np.linalg.norm(hit.normal)
            if np.dot(normal, direction) > 0:
                normal = -normal
            if material.is_emissive():
                color += attenuation * np.asarray(material.emission) * 0.1

            # Hard shadow: one ray toward the point light.
            to_light = light - hit.position
            distance = float(np.linalg.norm(to_light))
            shadow = yield TraceCall(
                tuple(hit.position + 1e-3 * normal),
                tuple(to_light), tmax=distance,
            )
            if not shadow.hit:
                lambert = max(0.0, float(np.dot(normal, to_light / distance)))
                color += (
                    attenuation * (1.0 - material.mirror)
                    * lambert * np.asarray(material.albedo)
                )

            if material.mirror <= 0.05 or depth == args.depth:
                break
            attenuation *= material.mirror
            direction = reflect(direction, normal)
            origin = hit.position + 1e-3 * direction
        payload["color"] = color

    results = {}
    for policy in ("baseline", "vtq"):
        pipeline = RayTracingPipeline(raygen)
        results[policy] = pipeline.launch(bvh, width, height, policy=policy)
        r = results[policy]
        print(f"{policy:9s}  {r.cycles:12,.0f} cycles   "
              f"SIMT {r.stats.simt_efficiency():.2f}")

    img_base = results["baseline"].image(lambda p: p["color"])
    img_vtq = results["vtq"].image(lambda p: p["color"])
    assert np.allclose(img_base, img_vtq)
    speedup = results["baseline"].cycles / results["vtq"].cycles
    print(f"\nSpeedup {speedup:.2f}x; images identical.")
    if speedup < 1.0:
        print(
            "Note: Whitted rays are highly coherent (baseline SIMT is already "
            f"{results['baseline'].stats.simt_efficiency():.2f}) and the ray "
            "population is small, so treelet queues have nothing to amortize "
            "here — the negative result the paper predicts for workloads "
            "without incoherent secondary rays. Compare with "
            "examples/quickstart.py on a path-traced scene."
        )
    path = f"{args.scene.lower()}_whitted.ppm"
    write_ppm(path, tonemap(img_base, exposure=2.0))
    print(f"Wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
