#!/usr/bin/env python3
"""Export an RT-unit activity timeline for chrome://tracing.

Attaches an ActivityTimeline to one SM's VTQ engine, traces a batch of
rays, and writes a Chrome-tracing JSON file.  Open it in
chrome://tracing or https://ui.perfetto.dev to *see* the three phases of
dynamic treelet queues: the initial ray-stationary bursts, the
treelet-stationary blocks, and the long repacked final-phase warps.

Run:  python examples/trace_timeline.py [SCENE]
"""

import argparse
import sys

from repro.bvh import build_scene_bvh
from repro.core import VTQConfig, VTQRTUnit
from repro.gpusim import MemorySystem, SimRay, SimStats, TraceWarp
from repro.gpusim.config import default_setup
from repro.gpusim.timeline import ActivityTimeline, write_chrome_trace
from repro.scenes import load_scene, scene_names
from repro.tracing.path_tracer import ShadingEngine


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scene", nargs="?", default="SPNZA",
                        choices=scene_names(include_extra=True))
    args = parser.parse_args()

    setup = default_setup()
    scene = load_scene(args.scene, scale=setup.scene_scale)
    bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=setup.gpu.treelet_bytes)

    config = setup.gpu
    stats = SimStats()
    engine = VTQRTUnit(
        bvh, config,
        VTQConfig().scaled_to(min(config.max_virtual_rays_per_sm, 1024)),
        MemorySystem(config, stats), stats,
    )
    engine.timeline = ActivityTimeline(sm=0)

    shading = ShadingEngine(scene, bvh, max_bounces=setup.max_bounces)
    primaries = scene.camera.primary_rays(32, 32)
    rays = [
        SimRay(p, p, p // config.cta_threads, 0,
               shading.begin_traversal(
                   shading.make_primary(p, primaries.origins[p],
                                        primaries.directions[p])))
        for p in range(1024)
    ]
    for start in range(0, len(rays), config.warp_size):
        engine.submit(TraceWarp(rays[start:start + 32],
                                rays[start].cta_id))
    engine.run(lambda ray, cycle: None)

    by_category = engine.timeline.total_by_category()
    print(f"{args.scene}: {engine.cycle:,.0f} cycles, "
          f"{len(engine.timeline)} activity spans")
    for category, cycles in sorted(by_category.items(), key=lambda kv: -kv[1]):
        print(f"  {category:24s} {cycles:12,.0f} cycles "
              f"({cycles / engine.cycle:5.1%})")

    path = f"{args.scene.lower()}_timeline.json"
    write_chrome_trace(engine.timeline.spans, path)
    print(f"\nWrote {path} — open it in chrome://tracing or ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    sys.exit(main())
