#!/usr/bin/env python3
"""Point-in-mesh classification on the simulated RT unit.

Voxelizers and 3D-print slicers classify millions of points as inside or
outside a watertight mesh by casting one ray per point and counting
surface crossings (parity).  Each query is an any-hit ray, so the whole
workload runs through the RT engines unmodified — a concrete instance of
the paper's Section 8 claim that treelet queues generalize beyond
rendering.

Run:  python examples/point_in_mesh.py [--points N]
"""

import argparse
import sys

import numpy as np

from repro.rtquery import MeshClassifier, time_queries
from repro.scenes import blob


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=512)
    parser.add_argument("--subdivisions", type=int, default=4,
                        help="icosphere subdivisions for the test solid")
    args = parser.parse_args()

    solid = blob(args.subdivisions, radius=2.0, bumpiness=0.15, seed=11)
    print(f"Test solid: {solid.triangle_count} triangles (bumpy blob)")
    classifier = MeshClassifier(solid)
    print(f"BVH: {classifier.bvh.node_count} nodes, "
          f"{classifier.bvh.treelet_count} treelets\n")

    rng = np.random.default_rng(5)
    points = rng.uniform(-2.6, 2.6, (args.points, 3))

    def factory(i):
        return classifier.make_query_state(points[i], ray_id=i)

    results = {}
    for policy in ("baseline", "vtq"):
        results[policy] = time_queries(
            classifier.bvh, factory, args.points, policy=policy
        )
        r = results[policy]
        inside = sum(
            MeshClassifier.classify_state(s) for s in r.states
        )
        print(f"{policy:9s}  {r.cycles:12,.0f} cycles   "
              f"{inside}/{args.points} points inside   "
              f"SIMT {r.stats.simt_efficiency():.2f}")

    flags = [
        [MeshClassifier.classify_state(s) for s in results[p].states]
        for p in ("baseline", "vtq")
    ]
    assert flags[0] == flags[1], "policies must classify identically"
    print(f"\nClassifications identical across engines.")
    print(f"VTQ speedup on containment queries: "
          f"{results['baseline'].cycles / results['vtq'].cycles:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
