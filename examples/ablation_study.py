#!/usr/bin/env python3
"""Ablation study: which VTQ mechanism buys what?

The paper's design has four separable pieces — treelet-stationary
processing, grouping of underpopulated queues, warp repacking, and treelet
preloading — plus the ray-virtualization overhead knob.  This example
stacks them up one at a time on a single scene and prints the cumulative
effect, mirroring how Sections 6.2-6.4 build the argument.

Run:  python examples/ablation_study.py [SCENE]
"""

import argparse
import sys
from dataclasses import replace

from repro.bvh import build_scene_bvh
from repro.core.config import VTQConfig
from repro.gpusim.config import default_setup
from repro.scenes import load_scene, scene_names
from repro.tracing import render_scene


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scene", nargs="?", default="LANDS",
                        choices=scene_names(include_extra=True))
    args = parser.parse_args()

    setup = default_setup()
    scene = load_scene(args.scene, scale=setup.scene_scale)
    bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=setup.gpu.treelet_bytes)

    full = VTQConfig().scaled_to(setup.gpu.max_virtual_rays_per_sm)
    variants = [
        ("baseline GPU", None, "baseline"),
        ("naive treelet queues", full.naive(), "vtq"),
        ("+ group underpopulated", replace(full, repack_enabled=False,
                                           preload_enabled=False), "vtq"),
        ("+ warp repacking", replace(full, preload_enabled=False), "vtq"),
        ("+ treelet preloading (full VTQ)", full, "vtq"),
        ("full VTQ, free virtualization",
         replace(full, virtualization_overheads=False), "vtq"),
    ]

    print(f"Ablation on {args.scene} "
          f"({scene.mesh.triangle_count} tris, {bvh.treelet_count} treelets)\n")
    base_cycles = None
    header = f"{'configuration':36s} {'cycles':>14s} {'speedup':>8s} {'SIMT':>6s}"
    print(header)
    print("-" * len(header))
    for label, vtq, policy in variants:
        result = render_scene(scene, bvh, setup, policy=policy, vtq_config=vtq)
        if base_cycles is None:
            base_cycles = result.cycles
        print(f"{label:36s} {result.cycles:14,.0f} "
              f"{base_cycles / result.cycles:7.2f}x "
              f"{result.stats.simt_efficiency():6.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
