#!/usr/bin/env python3
"""Treelet explorer: inspect how a BVH decomposes into treelets.

Builds a scene's acceleration structure at several treelet budgets and
reports the partition statistics (count, fill, address ranges) plus, for
one representative ray, the treelet-ordered traversal trace — the
two-stack order of Chou et al. that the whole paper builds on.

Run:  python examples/treelet_explorer.py [SCENE]
"""

import argparse
import sys

from repro.bvh import build_scene_bvh
from repro.bvh.layout import layout_summary
from repro.bvh.traversal import init_traversal, single_step
from repro.scenes import load_scene, scene_names


def traversal_trace(bvh, origin, direction, limit=40):
    """(treelet, is_leaf) sequence of one ray's visits."""
    state = init_traversal(bvh, origin, direction)
    trace = []
    while len(trace) < limit:
        step = single_step(bvh, state)
        if step is None:
            break
        trace.append((bvh.treelet_of_item(step[0]), step[1]))
    return trace, state.hit_record()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scene", nargs="?", default="CRNVL",
                        choices=scene_names(include_extra=True))
    args = parser.parse_args()

    scene = load_scene(args.scene, scale=1.0)
    print(f"{args.scene}: {scene.mesh.triangle_count} triangles\n")

    print(f"{'budget':>8s} {'treelets':>9s} {'mean fill':>10s} "
          f"{'mean KB':>8s} {'BVH KB':>8s}")
    for budget in (512, 1024, 2048, 4096, 8192):
        bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=budget)
        stats = bvh.partition.stats()
        info = layout_summary(bvh.layout, bvh.partition)
        print(f"{budget:8d} {int(stats['treelet_count']):9d} "
              f"{stats['fill_ratio']:10.2f} {stats['mean_bytes'] / 1024:8.2f} "
              f"{info['total_mb'] * 1024:8.0f}")

    bvh = build_scene_bvh(scene.mesh, treelet_budget_bytes=1024)
    ray = scene.camera.pixel_ray(16, 16, 32, 32)
    trace, hit = traversal_trace(bvh, ray.origin, ray.direction)
    print(f"\nCenter-ish primary ray: hit={hit.hit}"
          + (f" t={hit.t:.3f} prim={hit.prim_id}" if hit.hit else ""))
    print("Treelet-ordered visit trace (treelet id, L = leaf block):")
    rendered = " ".join(
        f"{t}{'L' if is_leaf else ''}" for t, is_leaf in trace
    )
    print(f"  {rendered}")

    # Count treelet switches: the quantity treelet queues amortize.
    switches = sum(
        1 for a, b in zip(trace, trace[1:]) if a[0] != b[0]
    )
    print(f"\n{len(trace)} visits across {len(set(t for t, _ in trace))} treelets, "
          f"{switches} treelet switches")
    print("Treelet queues amortize each switch over a queue of rays; the "
          "baseline pays it per ray.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
